//! Periodic sliding-window semantics (CQL-style, §3.1).
//!
//! A query has a fixed window size `win` and slide size `slide`, either
//! count-based (tuple counts) or time-based (timestamp intervals). Clusters
//! are produced once per slide over the points currently inside the window.
//!
//! The determinism of these semantics — every object's expiry window is known
//! the moment it arrives — is what makes the lifespan analysis of §5.3
//! possible; the arithmetic itself lives in `sgs-stream::lifespan` and is
//! built on [`WindowSpec`].

use crate::error::{Error, Result};

/// Whether window extents are measured in tuples or in timestamp units.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WindowKind {
    /// `win` and `slide` count tuples; a point's "time" is its arrival
    /// sequence number.
    Count,
    /// `win` and `slide` are timestamp intervals; a point's time is its
    /// `ts` field.
    Time,
}

/// A periodic sliding window specification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WindowSpec {
    /// Window extent (tuples or time units).
    pub win: u64,
    /// Slide extent (tuples or time units).
    pub slide: u64,
    /// Count- or time-based semantics.
    pub kind: WindowKind,
}

impl WindowSpec {
    /// Count-based window: the most recent `win` tuples, advancing every
    /// `slide` tuples.
    pub fn count(win: u64, slide: u64) -> Result<Self> {
        Self::validate(win, slide)?;
        Ok(WindowSpec {
            win,
            slide,
            kind: WindowKind::Count,
        })
    }

    /// Time-based window: the most recent `win` time units, advancing every
    /// `slide` units.
    pub fn time(win: u64, slide: u64) -> Result<Self> {
        Self::validate(win, slide)?;
        Ok(WindowSpec {
            win,
            slide,
            kind: WindowKind::Time,
        })
    }

    fn validate(win: u64, slide: u64) -> Result<()> {
        if win == 0 || slide == 0 {
            return Err(Error::InvalidWindow(
                "window and slide must be positive".into(),
            ));
        }
        if slide > win {
            return Err(Error::InvalidWindow(format!(
                "slide ({slide}) must not exceed window size ({win}): \
                 tumbling-with-gaps semantics are not defined by the paper"
            )));
        }
        if !win.is_multiple_of(slide) {
            return Err(Error::InvalidWindow(format!(
                "window size ({win}) must be a multiple of slide ({slide}) \
                 for periodic sliding windows"
            )));
        }
        Ok(())
    }

    /// Number of windows any single object participates in: `win / slide`.
    /// This is also the number of "views" Extra-N maintains, and the upper
    /// bound on every lifespan in the system.
    #[inline]
    pub fn views(&self) -> u64 {
        self.win / self.slide
    }

    /// Number of *complete* windows that have ended at or before logical
    /// time `t` (exclusive of the partial window still filling). Window
    /// `W_i` covers `[i*slide, i*slide + win)`, so it completes when
    /// `t >= i*slide + win`.
    pub fn completed_windows(&self, t: u64) -> u64 {
        if t < self.win {
            0
        } else {
            (t - self.win) / self.slide + 1
        }
    }

    /// Start (inclusive) of window `w` in logical time.
    #[inline]
    pub fn window_start(&self, w: u64) -> u64 {
        w * self.slide
    }

    /// End (exclusive) of window `w` in logical time.
    #[inline]
    pub fn window_end(&self, w: u64) -> u64 {
        w * self.slide + self.win
    }

    /// The first window that contains an object with logical time `t`:
    /// the smallest `w` with `window_start(w) <= t < window_end(w)`.
    pub fn first_window_of(&self, t: u64) -> u64 {
        if t < self.win {
            0
        } else {
            // earliest window whose end exceeds t
            (t - self.win) / self.slide + 1
        }
    }

    /// The last window containing logical time `t`: `floor(t / slide)`.
    #[inline]
    pub fn last_window_of(&self, t: u64) -> u64 {
        t / self.slide
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_extents() {
        assert!(WindowSpec::count(0, 1).is_err());
        assert!(WindowSpec::count(10, 0).is_err());
    }

    #[test]
    fn rejects_slide_larger_than_window() {
        assert!(WindowSpec::count(5, 10).is_err());
    }

    #[test]
    fn rejects_non_divisible_slide() {
        assert!(WindowSpec::count(10, 3).is_err());
        assert!(WindowSpec::count(10, 5).is_ok());
    }

    #[test]
    fn views_is_win_over_slide() {
        let w = WindowSpec::count(10_000, 1_000).unwrap();
        assert_eq!(w.views(), 10);
    }

    #[test]
    fn window_extents() {
        let w = WindowSpec::count(10, 2).unwrap();
        assert_eq!(w.window_start(0), 0);
        assert_eq!(w.window_end(0), 10);
        assert_eq!(w.window_start(3), 6);
        assert_eq!(w.window_end(3), 16);
    }

    #[test]
    fn membership_window_ranges() {
        let w = WindowSpec::count(10, 2).unwrap();
        // t=0 is only in window 0..=0? last = 0/2 = 0; first = 0.
        assert_eq!(w.first_window_of(0), 0);
        assert_eq!(w.last_window_of(0), 0);
        // t=9 participates in windows 0..=4
        assert_eq!(w.first_window_of(9), 0);
        assert_eq!(w.last_window_of(9), 4);
        // t=10: windows 1..=5
        assert_eq!(w.first_window_of(10), 1);
        assert_eq!(w.last_window_of(10), 5);
    }

    #[test]
    fn completed_windows_counts() {
        let w = WindowSpec::count(10, 2).unwrap();
        assert_eq!(w.completed_windows(9), 0);
        assert_eq!(w.completed_windows(10), 1); // window 0 = [0,10) done
        assert_eq!(w.completed_windows(11), 1);
        assert_eq!(w.completed_windows(12), 2);
    }

    #[test]
    fn every_point_in_views_windows() {
        // In steady state (t >= win - slide) every point participates in
        // exactly win/slide windows.
        let w = WindowSpec::count(12, 3).unwrap();
        for t in (w.win - w.slide)..40u64 {
            let first = w.first_window_of(t);
            let last = w.last_window_of(t);
            assert_eq!(last - first + 1, w.views(), "t={t}");
            assert!(w.window_start(first) <= t && t < w.window_end(first));
            assert!(w.window_start(last) <= t && t < w.window_end(last));
        }
    }
}
