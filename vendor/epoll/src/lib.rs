//! Offline stand-in for the [`epoll`](https://crates.io/crates/epoll)
//! crate.
//!
//! The build environment has no network access, so the reactor front-end
//! (`DESIGN.md` §14) is satisfied by this thin safe wrapper over the
//! kernel's epoll interface (see the "Vendored dependency shims" section
//! of `DESIGN.md`). It reproduces the part of the API the workspace
//! relies on: [`create`] / [`ctl`] / [`wait`] / [`close`], the packed
//! [`Event`] struct, and the [`Events`] interest flags. The syscalls are
//! declared directly (`std` already links libc, the same arrangement the
//! server uses for its `SIGTERM` handler) — no new dependency.
//!
//! On non-Linux unix targets the same API is emulated over `poll(2)`
//! with a process-local interest table, level-triggered only (`EPOLLET`
//! and `EPOLLONESHOT` are ignored there); non-unix targets return
//! `Unsupported`.

use std::io;
use std::ops::{BitAnd, BitOr, BitOrAssign};

/// Raw file descriptor alias, so callers need no `libc` types.
pub type RawFd = i32;

/// Interest / readiness flags, numerically identical to the kernel's
/// `EPOLL*` constants.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Events(u32);

impl Events {
    /// The associated file is readable.
    pub const EPOLLIN: Events = Events(0x001);
    /// The associated file is writable.
    pub const EPOLLOUT: Events = Events(0x004);
    /// Error condition (always reported; never needs registering).
    pub const EPOLLERR: Events = Events(0x008);
    /// Hang-up (always reported; never needs registering).
    pub const EPOLLHUP: Events = Events(0x010);
    /// Peer closed its writing half.
    pub const EPOLLRDHUP: Events = Events(0x2000);
    /// One-shot delivery: the fd is disabled after one event.
    pub const EPOLLONESHOT: Events = Events(1 << 30);
    /// Edge-triggered delivery.
    pub const EPOLLET: Events = Events(1 << 31);

    /// Empty flag set.
    pub fn empty() -> Events {
        Events(0)
    }

    /// The raw bit pattern.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Reconstruct from raw bits (unknown bits are kept, matching the
    /// kernel's pass-through behavior).
    pub fn from_bits_truncate(bits: u32) -> Events {
        Events(bits)
    }

    /// Does `self` contain every bit of `other`?
    pub fn contains(self, other: Events) -> bool {
        self.0 & other.0 == other.0
    }

    /// Does `self` share any bit with `other`?
    pub fn intersects(self, other: Events) -> bool {
        self.0 & other.0 != 0
    }
}

impl BitOr for Events {
    type Output = Events;
    fn bitor(self, rhs: Events) -> Events {
        Events(self.0 | rhs.0)
    }
}

impl BitOrAssign for Events {
    fn bitor_assign(&mut self, rhs: Events) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for Events {
    type Output = Events;
    fn bitand(self, rhs: Events) -> Events {
        Events(self.0 & rhs.0)
    }
}

/// One registration / readiness record: the kernel's `struct
/// epoll_event` (packed on x86-64, per the kernel ABI).
#[derive(Clone, Copy, Debug, Default)]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
pub struct Event {
    /// Interest bits in, readiness bits out ([`Events::bits`]).
    pub events: u32,
    /// Caller-owned cookie returned verbatim with each readiness record
    /// (the reactor stores its connection token here).
    pub data: u64,
}

impl Event {
    /// Build a record from an interest set and a cookie.
    pub fn new(events: Events, data: u64) -> Event {
        Event {
            events: events.bits(),
            data,
        }
    }

    /// The readiness bits as a typed flag set.
    pub fn events(&self) -> Events {
        Events(self.events)
    }
}

/// `epoll_ctl` operation selector. The variants keep the kernel's
/// spelling (and the real crate's), hence the case exception.
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(i32)]
pub enum ControlOptions {
    /// Register a new fd.
    EPOLL_CTL_ADD = 1,
    /// Remove a registered fd.
    EPOLL_CTL_DEL = 2,
    /// Change a registered fd's interest set.
    EPOLL_CTL_MOD = 3,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{ControlOptions, Event, RawFd};
    use std::io;
    use std::os::raw::c_int;

    const EPOLL_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut Event) -> c_int;
        fn epoll_wait(epfd: c_int, events: *mut Event, maxevents: c_int, timeout: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub fn create(close_exec: bool) -> io::Result<RawFd> {
        let flags = if close_exec { EPOLL_CLOEXEC } else { 0 };
        cvt(unsafe { epoll_create1(flags) })
    }

    pub fn ctl(epfd: RawFd, op: ControlOptions, fd: RawFd, mut event: Event) -> io::Result<()> {
        cvt(unsafe { epoll_ctl(epfd, op as c_int, fd, &mut event) }).map(|_| ())
    }

    pub fn wait(epfd: RawFd, timeout: i32, buf: &mut [Event]) -> io::Result<usize> {
        loop {
            let n = unsafe {
                epoll_wait(
                    epfd,
                    buf.as_mut_ptr(),
                    buf.len().min(c_int::MAX as usize) as c_int,
                    timeout,
                )
            };
            match cvt(n) {
                Ok(n) => return Ok(n as usize),
                // Retry on signal interruption (the server installs a
                // SIGTERM handler; its delivery must not kill the wait).
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    pub fn close_fd(fd: RawFd) -> io::Result<()> {
        cvt(unsafe { close(fd) }).map(|_| ())
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! `poll(2)` emulation for unix targets without epoll: a
    //! process-local interest table keyed by a synthetic "epoll fd".
    //! Level-triggered only; `EPOLLET`/`EPOLLONESHOT` bits are ignored.
    use super::{ControlOptions, Event, Events, RawFd};
    use std::collections::HashMap;
    use std::io;
    use std::os::raw::{c_int, c_short, c_ulong};
    use std::sync::atomic::{AtomicI32, Ordering};
    use std::sync::{Mutex, OnceLock};

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    fn table() -> &'static Mutex<HashMap<RawFd, HashMap<RawFd, Event>>> {
        static TABLE: OnceLock<Mutex<HashMap<RawFd, HashMap<RawFd, Event>>>> = OnceLock::new();
        TABLE.get_or_init(|| Mutex::new(HashMap::new()))
    }

    pub fn create(_close_exec: bool) -> io::Result<RawFd> {
        // Synthetic ids count downward from -2 so they can never collide
        // with a real descriptor (or with -1, the error sentinel).
        static NEXT: AtomicI32 = AtomicI32::new(-2);
        let id = NEXT.fetch_sub(1, Ordering::SeqCst);
        table().lock().unwrap().insert(id, HashMap::new());
        Ok(id)
    }

    pub fn ctl(epfd: RawFd, op: ControlOptions, fd: RawFd, event: Event) -> io::Result<()> {
        let mut table = table().lock().unwrap();
        let set = table
            .get_mut(&epfd)
            .ok_or_else(|| io::Error::from_raw_os_error(9 /* EBADF */))?;
        match op {
            ControlOptions::EPOLL_CTL_ADD => {
                if set.insert(fd, event).is_some() {
                    return Err(io::Error::from_raw_os_error(17 /* EEXIST */));
                }
            }
            ControlOptions::EPOLL_CTL_MOD => {
                *set.get_mut(&fd)
                    .ok_or_else(|| io::Error::from_raw_os_error(2 /* ENOENT */))? = event;
            }
            ControlOptions::EPOLL_CTL_DEL => {
                set.remove(&fd)
                    .ok_or_else(|| io::Error::from_raw_os_error(2 /* ENOENT */))?;
            }
        }
        Ok(())
    }

    pub fn wait(epfd: RawFd, timeout: i32, buf: &mut [Event]) -> io::Result<usize> {
        let interests: Vec<(RawFd, Event)> = {
            let table = table().lock().unwrap();
            let set = table
                .get(&epfd)
                .ok_or_else(|| io::Error::from_raw_os_error(9 /* EBADF */))?;
            set.iter().map(|(&fd, &ev)| (fd, ev)).collect()
        };
        let mut fds: Vec<PollFd> = interests
            .iter()
            .map(|(fd, ev)| {
                let want = Events::from_bits_truncate(ev.events);
                let mut events = 0;
                if want.contains(Events::EPOLLIN) {
                    events |= POLLIN;
                }
                if want.contains(Events::EPOLLOUT) {
                    events |= POLLOUT;
                }
                PollFd {
                    fd: *fd,
                    events,
                    revents: 0,
                }
            })
            .collect();
        loop {
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(e);
            }
            break;
        }
        let mut out = 0;
        for (slot, (_, registered)) in fds.iter().zip(&interests) {
            if out == buf.len() {
                break;
            }
            let mut ready = Events::empty();
            if slot.revents & POLLIN != 0 {
                ready |= Events::EPOLLIN;
            }
            if slot.revents & POLLOUT != 0 {
                ready |= Events::EPOLLOUT;
            }
            if slot.revents & POLLERR != 0 {
                ready |= Events::EPOLLERR;
            }
            if slot.revents & POLLHUP != 0 {
                ready |= Events::EPOLLHUP;
            }
            if ready != Events::empty() {
                buf[out] = Event::new(ready, registered.data);
                out += 1;
            }
        }
        Ok(out)
    }

    pub fn close_fd(fd: RawFd) -> io::Result<()> {
        table().lock().unwrap().remove(&fd);
        Ok(())
    }
}

#[cfg(not(unix))]
mod sys {
    use super::{ControlOptions, Event, RawFd};
    use std::io;

    pub fn create(_close_exec: bool) -> io::Result<RawFd> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll shim: no readiness backend on this platform",
        ))
    }

    pub fn ctl(_: RawFd, _: ControlOptions, _: RawFd, _: Event) -> io::Result<()> {
        Err(io::ErrorKind::Unsupported.into())
    }

    pub fn wait(_: RawFd, _: i32, _: &mut [Event]) -> io::Result<usize> {
        Err(io::ErrorKind::Unsupported.into())
    }

    pub fn close_fd(_: RawFd) -> io::Result<()> {
        Err(io::ErrorKind::Unsupported.into())
    }
}

/// Create an epoll instance, returning its file descriptor.
pub fn create(close_exec: bool) -> io::Result<RawFd> {
    sys::create(close_exec)
}

/// Add, modify, or remove one fd's registration on `epfd`.
pub fn ctl(epfd: RawFd, op: ControlOptions, fd: RawFd, event: Event) -> io::Result<()> {
    sys::ctl(epfd, op, fd, event)
}

/// Wait up to `timeout` milliseconds (−1 = forever, 0 = poll) for
/// readiness, filling `buf` and returning how many records were written.
/// Signal interruptions are retried internally.
pub fn wait(epfd: RawFd, timeout: i32, buf: &mut [Event]) -> io::Result<usize> {
    sys::wait(epfd, timeout, buf)
}

/// Close an epoll instance created by [`create`].
pub fn close(epfd: RawFd) -> io::Result<()> {
    sys::close_fd(epfd)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::net::UnixStream;

    fn fd(s: &UnixStream) -> RawFd {
        use std::os::unix::io::AsRawFd;
        s.as_raw_fd()
    }

    #[test]
    fn readiness_roundtrip_over_a_socketpair() {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        let ep = create(true).unwrap();
        // Writable immediately; not readable until the peer writes.
        ctl(
            ep,
            ControlOptions::EPOLL_CTL_ADD,
            fd(&b),
            Event::new(Events::EPOLLIN, 7),
        )
        .unwrap();
        let mut buf = [Event::default(); 8];
        assert_eq!(wait(ep, 0, &mut buf).unwrap(), 0, "no data yet");

        a.write_all(b"x").unwrap();
        let n = wait(ep, 1000, &mut buf).unwrap();
        assert_eq!(n, 1);
        let cookie = { buf[0].data }; // copy out of the packed struct
        assert_eq!(cookie, 7);
        assert!(buf[0].events().contains(Events::EPOLLIN));

        // MOD to write interest: a fresh socket is writable at once.
        ctl(
            ep,
            ControlOptions::EPOLL_CTL_MOD,
            fd(&b),
            Event::new(Events::EPOLLIN | Events::EPOLLOUT, 7),
        )
        .unwrap();
        let n = wait(ep, 1000, &mut buf).unwrap();
        assert_eq!(n, 1);
        assert!(buf[0].events().contains(Events::EPOLLOUT));

        // Drain, deregister, and confirm silence.
        let mut byte = [0u8; 1];
        b.read_exact(&mut byte).unwrap();
        ctl(ep, ControlOptions::EPOLL_CTL_DEL, fd(&b), Event::default()).unwrap();
        a.write_all(b"y").unwrap();
        assert_eq!(wait(ep, 0, &mut buf).unwrap(), 0, "deregistered fd is mute");
        close(ep).unwrap();
    }

    #[test]
    fn hangup_is_reported_without_registration() {
        let (a, b) = UnixStream::pair().unwrap();
        let ep = create(true).unwrap();
        ctl(
            ep,
            ControlOptions::EPOLL_CTL_ADD,
            fd(&b),
            Event::new(Events::EPOLLIN, 3),
        )
        .unwrap();
        drop(a);
        let mut buf = [Event::default(); 4];
        let n = wait(ep, 1000, &mut buf).unwrap();
        assert_eq!(n, 1);
        assert!(
            buf[0]
                .events()
                .intersects(Events::EPOLLHUP | Events::EPOLLIN),
            "a closed peer surfaces as HUP (or readable EOF): {:?}",
            buf[0].events()
        );
        close(ep).unwrap();
    }

    #[test]
    fn zero_timeout_wait_does_not_block() {
        let ep = create(false).unwrap();
        let mut buf = [Event::default(); 2];
        let started = std::time::Instant::now();
        assert_eq!(wait(ep, 0, &mut buf).unwrap(), 0);
        assert!(started.elapsed() < std::time::Duration::from_secs(1));
        close(ep).unwrap();
    }
}
