//! The uniform grid index used by the pattern extractor (§5.4).
//!
//! Every arriving object is loaded into its cell, then a single **range
//! query search** (RQS) finds its neighbors by scanning the bounded set of
//! reachable cells (`(2·reach+1)^d`, see [`GridGeometry::reachable_cells`])
//! and pruning by true distance. Because the basic cell diagonal equals θr,
//! all points co-located in a cell are mutual neighbors (Lemma 4.1) — the
//! index exposes per-cell buckets so algorithms can exploit that.
//!
//! Cell storage is structure-of-arrays ([`CellSlab`]): each cell keeps one
//! contiguous coordinate slab plus parallel id/expiry columns, so the
//! distance pruning of an RQS feeds whole cells into the batched
//! [`sgs_core::kernel`] with zero pointer chasing (`DESIGN.md` §13).

use sgs_core::{kernel, CellCoord, GridGeometry, HeapSize, Point, PointId, WindowId};

use crate::fx::FxHashMap;

/// The points of one grid cell, stored column-wise: `coords` holds the
/// cell's points back to back (`dim` consecutive `f64`s per point, the
/// same slab layout the [`sgs_core::kernel`] batch primitives consume),
/// with `ids[j]` / `expires[j]` the id and expiry window of the point at
/// slab position `j`. Expiry rides inline because C-SGS discovery reads
/// every neighbor's expiry and a point's expiry is fixed at arrival
/// (`DESIGN.md` §1) — the copy can never go stale while indexed.
#[derive(Clone, Debug, Default)]
pub struct CellSlab {
    ids: Vec<PointId>,
    expires: Vec<WindowId>,
    coords: Vec<f64>,
}

/// The bucket returned for cells with no live points.
static EMPTY_SLAB: CellSlab = CellSlab {
    ids: Vec::new(),
    expires: Vec::new(),
    coords: Vec::new(),
};

impl CellSlab {
    /// Number of points in the cell.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the cell holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The ids column, slab order.
    #[inline]
    pub fn ids(&self) -> &[PointId] {
        &self.ids
    }

    /// The expiry column, slab order.
    #[inline]
    pub fn expires(&self) -> &[WindowId] {
        &self.expires
    }

    /// The contiguous point-major coordinate slab.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Id of the point at slab position `j`.
    #[inline]
    pub fn id(&self, j: usize) -> PointId {
        self.ids[j]
    }

    /// Expiry window of the point at slab position `j`.
    #[inline]
    pub fn expires_at(&self, j: usize) -> WindowId {
        self.expires[j]
    }

    /// Coordinates of the point at slab position `j`.
    #[inline]
    pub fn point(&self, j: usize) -> &[f64] {
        let d = self.dim();
        &self.coords[j * d..j * d + d]
    }

    /// Coordinate count per point (0 for an empty slab).
    #[inline]
    fn dim(&self) -> usize {
        if self.ids.is_empty() {
            0
        } else {
            self.coords.len() / self.ids.len()
        }
    }

    fn push(&mut self, id: PointId, coords: &[f64], expires_at: WindowId) {
        self.ids.push(id);
        self.expires.push(expires_at);
        self.coords.extend_from_slice(coords);
    }

    /// Remove position `pos` by swapping the last point into the hole —
    /// all three columns move in lockstep so slab positions stay aligned.
    fn swap_remove(&mut self, pos: usize) {
        let d = self.dim();
        let last = self.ids.len() - 1;
        self.ids.swap_remove(pos);
        self.expires.swap_remove(pos);
        if pos != last {
            let (head, tail) = self.coords.split_at_mut(last * d);
            head[pos * d..pos * d + d].copy_from_slice(&tail[..d]);
        }
        self.coords.truncate(last * d);
    }

    fn heap_bytes(&self) -> usize {
        self.ids.capacity() * core::mem::size_of::<PointId>()
            + self.expires.capacity() * core::mem::size_of::<WindowId>()
            + self.coords.capacity() * core::mem::size_of::<f64>()
    }
}

/// Uniform grid over the data space, bucketing live points by cell.
#[derive(Clone, Debug)]
pub struct GridIndex {
    geometry: GridGeometry,
    cells: FxHashMap<CellCoord, CellSlab>,
    len: usize,
}

impl GridIndex {
    /// Empty index with the given geometry.
    pub fn new(geometry: GridGeometry) -> Self {
        GridIndex {
            geometry,
            cells: FxHashMap::default(),
            len: 0,
        }
    }

    /// The grid geometry.
    #[inline]
    pub fn geometry(&self) -> &GridGeometry {
        &self.geometry
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of non-empty cells.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Insert a non-expiring point (entry expiry pinned to the maximum
    /// window); returns the cell it landed in.
    pub fn insert(&mut self, id: PointId, point: &Point) -> CellCoord {
        self.insert_expiring(id, point, WindowId::MAX)
    }

    /// Insert a point together with its expiry window, stored inline in
    /// the cell slab so range-query consumers read it without a point-map
    /// lookup; returns the cell it landed in.
    pub fn insert_expiring(
        &mut self,
        id: PointId,
        point: &Point,
        expires_at: WindowId,
    ) -> CellCoord {
        let cell = self.geometry.cell_of(point);
        // Established cells (the overwhelmingly common case) take the
        // `get_mut` fast path; the key is cloned only when the insert
        // actually creates a new cell.
        if let Some(slab) = self.cells.get_mut(&cell) {
            slab.push(id, &point.coords, expires_at);
        } else {
            let mut slab = CellSlab::default();
            slab.push(id, &point.coords, expires_at);
            self.cells.insert(cell.clone(), slab);
        }
        self.len += 1;
        cell
    }

    /// Insert a point whose cell is already known (the re-shard move
    /// path): same effect as [`insert_expiring`](Self::insert_expiring)
    /// without recomputing the cell from the geometry.
    pub fn insert_at(
        &mut self,
        cell: &CellCoord,
        id: PointId,
        coords: &[f64],
        expires_at: WindowId,
    ) {
        if let Some(slab) = self.cells.get_mut(cell) {
            slab.push(id, coords, expires_at);
        } else {
            let mut slab = CellSlab::default();
            slab.push(id, coords, expires_at);
            self.cells.insert(cell.clone(), slab);
        }
        self.len += 1;
    }

    /// Remove a point from the cell it was inserted into. Returns `true`
    /// if it was present.
    pub fn remove(&mut self, id: PointId, cell: &CellCoord) -> bool {
        let Some(slab) = self.cells.get_mut(cell) else {
            return false;
        };
        let Some(pos) = slab.ids.iter().position(|&e| e == id) else {
            return false;
        };
        slab.swap_remove(pos);
        if slab.is_empty() {
            self.cells.remove(cell);
        }
        self.len -= 1;
        true
    }

    /// The live points currently bucketed in `cell` (an empty slab when
    /// the cell has none).
    #[inline]
    pub fn cell_points(&self, cell: &CellCoord) -> &CellSlab {
        self.cells.get(cell).unwrap_or(&EMPTY_SLAB)
    }

    /// Iterate over all non-empty cells.
    pub fn cells(&self) -> impl Iterator<Item = (&CellCoord, &CellSlab)> {
        self.cells.iter()
    }

    /// Visit every non-empty cell of the reachability block around the
    /// cell containing `coords`, in the same order
    /// [`GridGeometry::reachable_cells`] enumerates — but walking one
    /// reused coordinate buffer instead of materializing `(2·reach+1)^d`
    /// cell allocations per query (this enumeration is the hottest loop
    /// of C-SGS insertion).
    ///
    /// Cells whose bounding box provably sits farther than `theta_sq`
    /// from the query are skipped *before* the hash probe: the
    /// reachability block over-covers the θr-ball (its corner cells
    /// mostly lie outside it), and a few flops of box-clamping are much
    /// cheaper than a map lookup. The skip threshold carries a 16 ε
    /// relative margin so floating-point rounding in the box arithmetic
    /// can only ever err toward *visiting* a cell — pruning never changes
    /// the match set.
    fn for_each_reachable_bucket(
        &self,
        coords: &[f64],
        theta_sq: f64,
        mut f: impl FnMut(&CellCoord, &CellSlab),
    ) {
        let d = self.geometry.dim();
        let side = self.geometry.side();
        let reach = self.geometry.reach();
        debug_assert_eq!(coords.len(), d);
        let prune = theta_sq + theta_sq * 16.0 * f64::EPSILON;
        let mut lo = vec![0i32; d];
        let mut hi = vec![0i32; d];
        for i in 0..d {
            let c = (coords[i] / side).floor() as i32;
            lo[i] = c - reach;
            hi[i] = c + reach;
        }
        let mut cell = CellCoord::new(lo.clone());
        loop {
            // Minimum squared distance from the query to the cell's box.
            let mut min_sq = 0.0;
            for (&ci, &c) in cell.0.iter().zip(coords) {
                let lo_edge = ci as f64 * side;
                let hi_edge = lo_edge + side;
                let delta = if c < lo_edge {
                    lo_edge - c
                } else if c > hi_edge {
                    c - hi_edge
                } else {
                    0.0
                };
                min_sq += delta * delta;
            }
            if min_sq <= prune {
                if let Some(bucket) = self.cells.get(&cell) {
                    f(&cell, bucket);
                }
            }
            // Odometer increment, dimension 0 fastest (the
            // `reachable_cells` order).
            let mut i = 0;
            loop {
                if i == d {
                    return;
                }
                cell.0[i] += 1;
                if cell.0[i] <= hi[i] {
                    break;
                }
                cell.0[i] = lo[i];
                i += 1;
            }
        }
    }

    /// Range query search: every indexed point within `theta_r` of `coords`,
    /// excluding `exclude` (the querying point itself, per Def. 3.1 a point
    /// is not its own neighbor). Results are appended to `out`.
    ///
    /// Each visited cell's slab is fed whole into the batched distance
    /// kernel; the self-exclusion check runs once per *match*, not once
    /// per candidate.
    pub fn range_query(
        &self,
        coords: &[f64],
        theta_r: f64,
        exclude: PointId,
        out: &mut Vec<PointId>,
    ) {
        let theta_sq = theta_r * theta_r;
        self.for_each_reachable_bucket(coords, theta_sq, |_, slab| {
            kernel::for_each_within(coords, &slab.coords, theta_sq, |j| {
                let id = slab.ids[j];
                if id != exclude {
                    out.push(id);
                }
            });
        });
    }

    /// Like [`range_query`](Self::range_query) but yields
    /// `(id, cell, expires_at)` triples so callers can update per-cell
    /// and per-lifespan state without a second lookup.
    pub fn range_query_with_cells(
        &self,
        coords: &[f64],
        theta_r: f64,
        exclude: PointId,
        out: &mut Vec<(PointId, CellCoord, WindowId)>,
    ) {
        let theta_sq = theta_r * theta_r;
        self.for_each_reachable_bucket(coords, theta_sq, |cell, slab| {
            kernel::for_each_within(coords, &slab.coords, theta_sq, |j| {
                let id = slab.ids[j];
                if id != exclude {
                    out.push((id, cell.clone(), slab.expires[j]));
                }
            });
        });
    }
}

impl HeapSize for GridIndex {
    fn heap_size(&self) -> usize {
        let mut bytes = self.cells.capacity() * (core::mem::size_of::<(CellCoord, CellSlab)>() + 1);
        for (c, slab) in &self.cells {
            bytes += c.heap_size();
            bytes += slab.heap_bytes();
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_core::GridGeometry;

    fn index2d(theta_r: f64) -> GridIndex {
        GridIndex::new(GridGeometry::basic(2, theta_r))
    }

    fn pt(x: f64, y: f64) -> Point {
        Point::new(vec![x, y], 0)
    }

    #[test]
    fn insert_and_cell_lookup() {
        let mut g = index2d(1.0);
        let c = g.insert(PointId(0), &pt(0.1, 0.1));
        assert_eq!(g.len(), 1);
        assert_eq!(g.cell_points(&c).len(), 1);
        assert_eq!(g.cell_count(), 1);
    }

    #[test]
    fn range_query_finds_exact_neighbors() {
        let mut g = index2d(1.0);
        g.insert(PointId(0), &pt(0.0, 0.0));
        g.insert(PointId(1), &pt(0.5, 0.0)); // dist 0.5 → neighbor
        g.insert(PointId(2), &pt(1.0, 0.0)); // dist 1.0 → neighbor (inclusive)
        g.insert(PointId(3), &pt(1.01, 0.0)); // just outside
        g.insert(PointId(4), &pt(5.0, 5.0)); // far away
        let mut out = Vec::new();
        g.range_query(&[0.0, 0.0], 1.0, PointId(0), &mut out);
        out.sort();
        assert_eq!(out, vec![PointId(1), PointId(2)]);
    }

    #[test]
    fn range_query_excludes_self_only() {
        let mut g = index2d(1.0);
        g.insert(PointId(0), &pt(0.0, 0.0));
        g.insert(PointId(1), &pt(0.0, 0.0)); // coincident distinct point
        let mut out = Vec::new();
        g.range_query(&[0.0, 0.0], 1.0, PointId(0), &mut out);
        assert_eq!(out, vec![PointId(1)]);
    }

    #[test]
    fn remove_clears_cells() {
        let mut g = index2d(1.0);
        let c0 = g.insert(PointId(0), &pt(0.0, 0.0));
        let c1 = g.insert(PointId(1), &pt(10.0, 10.0));
        assert!(g.remove(PointId(0), &c0));
        assert!(!g.remove(PointId(0), &c0));
        assert_eq!(g.len(), 1);
        assert_eq!(g.cell_count(), 1);
        assert!(g.remove(PointId(1), &c1));
        assert!(g.is_empty());
    }

    #[test]
    fn swap_remove_keeps_slab_columns_aligned() {
        let mut g = index2d(10.0); // wide cells → everything co-located
        let c = g.insert(PointId(0), &pt(0.0, 0.0));
        g.insert_expiring(PointId(1), &pt(1.0, 1.0), WindowId(11));
        g.insert_expiring(PointId(2), &pt(2.0, 2.0), WindowId(22));
        assert!(g.remove(PointId(0), &c));
        let slab = g.cell_points(&c);
        assert_eq!(slab.len(), 2);
        for j in 0..slab.len() {
            let id = slab.id(j);
            assert_eq!(slab.point(j), &[id.0 as f64, id.0 as f64]);
            assert_eq!(slab.expires_at(j), WindowId(11 * id.0 as u64));
        }
    }

    #[test]
    fn range_query_matches_brute_force() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let theta = 0.3;
        let mut g = index2d(theta);
        let pts: Vec<Point> = (0..400)
            .map(|_| pt(rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)))
            .collect();
        for (i, p) in pts.iter().enumerate() {
            g.insert(PointId(i as u32), p);
        }
        for (i, p) in pts.iter().enumerate() {
            let mut fast = Vec::new();
            g.range_query(&p.coords, theta, PointId(i as u32), &mut fast);
            fast.sort();
            let mut slow: Vec<PointId> = pts
                .iter()
                .enumerate()
                .filter(|(j, q)| *j != i && p.is_neighbor(q, theta))
                .map(|(j, _)| PointId(j as u32))
                .collect();
            slow.sort();
            assert_eq!(fast, slow, "point {i}");
        }
    }

    #[test]
    fn with_cells_variant_reports_owning_cell_and_expiry() {
        let mut g = index2d(1.0);
        g.insert(PointId(0), &pt(0.0, 0.0));
        let cell1 = g.insert_expiring(PointId(1), &pt(0.9, 0.0), WindowId(42));
        let mut out = Vec::new();
        g.range_query_with_cells(&[0.0, 0.0], 1.0, PointId(0), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, PointId(1));
        assert_eq!(out[0].1, cell1);
        assert_eq!(out[0].2, WindowId(42));
    }

    #[test]
    fn plain_insert_pins_expiry_to_max() {
        let mut g = index2d(1.0);
        let c = g.insert(PointId(0), &pt(0.1, 0.1));
        assert_eq!(g.cell_points(&c).expires_at(0), WindowId::MAX);
    }

    #[test]
    fn heap_size_grows_with_content() {
        let mut g = index2d(1.0);
        let before = g.heap_size();
        for i in 0..100 {
            g.insert(PointId(i), &pt(i as f64, 0.0));
        }
        assert!(g.heap_size() > before);
    }
}
