//! Archive-layer integration: multi-resolution archival, budget selection,
//! shared (concurrent) pattern base, and matching through coarser levels.

use streamsum::archive::{choose_level, shared_pattern_base, ArchivePolicy, PatternArchiver};
use streamsum::matching::MatchConfig;
use streamsum::prelude::*;
use streamsum::summarize::{coarsen, multires, packed};

fn study_summaries(n: usize) -> Vec<Sgs> {
    use streamsum::core::GridGeometry;
    let g = GridGeometry::basic(2, 1.0);
    (0..n)
        .map(|k| {
            let x0 = (k as f64) * 9.0;
            let cores: Vec<Box<[f64]>> = (0..40 + (k % 7) * 10)
                .map(|i| {
                    vec![
                        x0 + 0.05 + (i % 8) as f64 * 0.3,
                        0.05 + (i / 8) as f64 * 0.3,
                    ]
                    .into()
                })
                .collect();
            Sgs::from_members(&MemberSet::new(cores, vec![]), &g)
        })
        .collect()
}

#[test]
fn archiver_levels_respect_budget_end_to_end() {
    let summaries = study_summaries(30);
    let budget = 200usize;
    let mut archiver = PatternArchiver::new(ArchivePolicy::All, 0).with_budget(3, budget, 3);
    archiver.observe(WindowId(0), summaries.iter());
    let base = archiver.into_base();
    assert_eq!(base.len(), 30);
    for p in base.iter() {
        let bytes = packed::archived_bytes(&p.sgs);
        // Either within budget, or already at the coarsest allowed level.
        assert!(
            bytes <= budget || p.sgs.level == 3,
            "pattern {:?}: {bytes} bytes at level {}",
            p.id,
            p.sgs.level
        );
    }
}

#[test]
fn choose_level_is_monotone_in_budget() {
    let s = &study_summaries(1)[0];
    let mut last = u8::MAX;
    for budget in [1usize, 50, 100, 200, 400, 1000, 10_000] {
        let level = choose_level(s, 3, budget, 4);
        assert!(level <= last || last == u8::MAX);
        last = level;
    }
    assert_eq!(choose_level(s, 3, usize::MAX / 2, 4), 0);
}

#[test]
fn coarse_archive_still_matches_translated_twin() {
    // Archive everything at level 1; a translated twin of a summary must
    // still be found by non-position-sensitive matching at that level.
    let summaries = study_summaries(12);
    let mut archiver = PatternArchiver::new(ArchivePolicy::All, 0).with_level(3, 1);
    archiver.observe(WindowId(0), summaries.iter());
    let base = archiver.into_base();

    let query = coarsen(&summaries[4], 3);
    let outcome = base.match_query(&query, &MatchConfig::equal_weights(false, 0.2));
    assert!(!outcome.matches.is_empty());
    assert!(
        outcome.matches[0].distance < 0.05,
        "d={}",
        outcome.matches[0].distance
    );
}

#[test]
fn shared_base_supports_concurrent_writers_and_readers() {
    let base = shared_pattern_base();
    let summaries = study_summaries(40);
    let writer_base = base.clone();
    let writer = std::thread::spawn(move || {
        for (i, s) in summaries.into_iter().enumerate() {
            writer_base.write().insert(s, WindowId(i as u64));
        }
    });
    let reader = {
        let base = base.clone();
        std::thread::spawn(move || {
            let cfg = MatchConfig::equal_weights(false, 0.3);
            let mut total = 0usize;
            for _ in 0..50 {
                let guard = base.read();
                let first = guard.iter().next().map(|p| p.sgs.clone());
                if let Some(sgs) = first {
                    total += guard.match_query(&sgs, &cfg).matches.len();
                }
            }
            total
        })
    };
    writer.join().unwrap();
    let _ = reader.join().unwrap();
    assert_eq!(base.read().len(), 40);
}

#[test]
fn archived_bytes_at_level_is_exact_after_materialization() {
    for s in study_summaries(6) {
        for theta in [2u32, 3] {
            let mut cur = s.clone();
            for level in 0u8..3 {
                assert_eq!(
                    multires::archived_bytes_at_level(&s, theta, level),
                    packed::archived_bytes(&cur),
                    "theta {theta} level {level}"
                );
                cur = coarsen(&cur, theta);
            }
        }
    }
}

#[test]
fn packed_codec_through_all_levels() {
    for s in study_summaries(4) {
        let mut cur = s;
        for _ in 0..3 {
            let decoded = packed::decode(packed::encode(&cur)).unwrap();
            assert_eq!(decoded.volume(), cur.volume());
            assert_eq!(decoded.population(), cur.population());
            assert_eq!(decoded.level, cur.level);
            cur = coarsen(&cur, 3);
        }
    }
}
