//! # sgs-exec
//!
//! The shared work-stealing scheduler pool that carries **all**
//! parallelism in streamsum (`DESIGN.md` §8). One persistent [`Pool`] of
//! worker threads replaces both thread-per-query fan-out (`sgs-runtime`)
//! and per-batch scoped-thread spawning (`sgs-csgs`'s sharded phases):
//!
//! * [`Pool::spawn`] — fire-and-forget tasks at two [`Priority`] levels.
//!   `Normal` carries query-ingestion tasks (a parked query costs zero
//!   threads until input arrives); `High` carries intra-query shard
//!   phases, which sit on the critical path of a blocked fork-join
//!   caller.
//! * [`Pool::scope`] — scoped fork-join over **borrowed** data, the
//!   `std::thread::scope` replacement. Spawned closures may borrow from
//!   the caller's stack; the scope does not return until every one of
//!   them has finished, and the waiting caller *helps execute* queued
//!   high-priority tasks instead of blocking, so fork-join makes
//!   progress even on a single-worker pool (and when invoked from
//!   within a pool task — nested fork-join is fully supported).
//! * [`global`] — the process-wide default pool, sized to
//!   `std::thread::available_parallelism`, created lazily on first use
//!   and never torn down. Components that are not handed an explicit
//!   pool (e.g. a standalone [`CSgs`] extractor) schedule here, which is
//!   what makes the scheduler *shared*: concurrent queries and their
//!   intra-query shard phases multiplex over one set of OS threads.
//!
//! ## Scheduling model
//!
//! Each worker owns a private deque; a task spawned from a worker thread
//! of the same pool (the fork of a fork-join phase) is pushed onto that
//! worker's own deque. Everything else lands in a global two-priority
//! injector. A worker looks for work in order: own deque (newest first —
//! fork-join children run hot), injector `High`, stealing the *oldest*
//! task from a sibling's deque (deques hold only `High` forks), and
//! `Normal` injector work last — so high-priority work is exhausted
//! pool-wide before any ingestion task is picked up. Idle workers sleep
//! on a condvar and are woken per push.
//!
//! Scheduling never affects results: streamsum's parallel consumers are
//! designed so their outputs are independent of task interleaving (the
//! sharded C-SGS phase protocol of `DESIGN.md` §6, the per-query
//! serialization of `sgs-runtime`'s executor) — the pool only decides
//! *where and when* work runs, never what it computes.
//!
//! [`CSgs`]: ../sgs_csgs/struct.CSgs.html

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use sgs_obs::{labeled, registry, Counter, Gauge, Histogram, SpanGuard};

/// A unit of pool work.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Construction-time handles into the process-wide metric registry
/// (`DESIGN.md` §11). Registered by name, so every pool in the process
/// shares one set of instruments — the scheduler metrics are process
/// totals, not per-pool series.
struct PoolMetrics {
    /// Tasks executed, labeled by the worker that ran them.
    tasks: Vec<Arc<Counter>>,
    /// Tasks help-executed by a blocked [`Pool::scope`] caller that is
    /// not a pool worker (`worker="caller"`).
    tasks_caller: Arc<Counter>,
    /// Successful steals from a sibling worker's deque.
    steals: Arc<Counter>,
    /// Times a worker went to sleep on the wake condvar.
    parks: Arc<Counter>,
    /// Times a sleeping worker was woken.
    unparks: Arc<Counter>,
    /// Tasks currently queued in the two-priority global injector.
    injector_depth: Arc<Gauge>,
    /// Tasks currently queued across all per-worker deques.
    deque_depth: Arc<Gauge>,
    /// Task execution latency (nanoseconds), by priority.
    task_nanos_high: Arc<Histogram>,
    task_nanos_normal: Arc<Histogram>,
}

impl PoolMetrics {
    fn new(threads: usize) -> PoolMetrics {
        let r = registry();
        PoolMetrics {
            tasks: (0..threads)
                .map(|w| {
                    r.counter(&labeled(
                        "sgs_exec_tasks_total",
                        &[("worker", &w.to_string())],
                    ))
                })
                .collect(),
            tasks_caller: r.counter(&labeled("sgs_exec_tasks_total", &[("worker", "caller")])),
            steals: r.counter("sgs_exec_steals_total"),
            parks: r.counter("sgs_exec_parks_total"),
            unparks: r.counter("sgs_exec_unparks_total"),
            injector_depth: r.gauge("sgs_exec_injector_depth"),
            deque_depth: r.gauge("sgs_exec_deque_depth"),
            task_nanos_high: r.histogram(&labeled("sgs_exec_task_nanos", &[("priority", "high")])),
            task_nanos_normal: r
                .histogram(&labeled("sgs_exec_task_nanos", &[("priority", "normal")])),
        }
    }

    fn task_nanos(&self, priority: Priority) -> &Histogram {
        match priority {
            Priority::High => &self.task_nanos_high,
            Priority::Normal => &self.task_nanos_normal,
        }
    }

    /// Count a task execution against the worker that ran it.
    fn count_task(&self, me: Option<usize>) {
        match me {
            Some(w) => self.tasks[w].inc(),
            None => self.tasks_caller.inc(),
        }
    }
}

/// Scheduling class of a [`Pool::spawn`]ed task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Priority {
    /// Intra-query work on the critical path of a blocked fork-join
    /// caller (shard phases). Always dispatched before `Normal`.
    High,
    /// Query-ingestion tasks: independent units of multiplexed progress.
    Normal,
}

/// The global two-priority task queue (spawns from non-worker threads,
/// plus every `Normal`-priority spawn). The `Normal` class is a set of
/// weighted fair queues (see [`FairNormal`]); `High` stays strict FIFO.
#[derive(Default)]
struct Injector {
    high: VecDeque<Task>,
    normal: FairNormal,
}

/// Numerator of the stride computation: a queue of weight `w` advances
/// its pass by `STRIDE1 / w` per dispatched task, so dispatch frequency
/// is proportional to weight. Large enough that integer division keeps
/// resolution for any plausible weight.
const STRIDE1: u64 = 1 << 20;

/// One fair queue of the `Normal` injector class: the tasks of one
/// tenancy key, dispatched at a rate proportional to `weight`.
struct FairQueue {
    key: u64,
    weight: u32,
    /// Virtual time at which this queue's next task is due. The queue
    /// with the minimum pass is dispatched next (stride scheduling).
    pass: u64,
    tasks: VecDeque<Task>,
}

/// Stride-scheduled weighted fair queues over tenancy keys — the
/// multi-tenant half of the scheduler (`DESIGN.md` §14). Each key (the
/// server maps one per authenticated owner; plain [`Pool::spawn`] uses
/// key 0 at weight 1) gets its own FIFO; dispatch picks the queue with
/// the minimum virtual `pass` and advances it by `STRIDE1 / weight`, so
/// over any busy interval each key receives pool slots in proportion to
/// its weight. A queue created (or refilled) while others ran starts at
/// the scheduler's current clock — an idle tenant accrues no credit to
/// burst with later. Ties break toward the lowest key, keeping dispatch
/// order deterministic for tests.
#[derive(Default)]
struct FairNormal {
    /// Live queues; keys are few (one per connected owner), so linear
    /// scans beat a map. Empty queues are dropped on pop — weight is
    /// re-supplied with every [`Pool::spawn_fair`] call, so nothing is
    /// lost and the set cannot grow with owner churn.
    queues: Vec<FairQueue>,
    /// Virtual clock: the pass of the most recently dispatched queue.
    clock: u64,
}

impl FairNormal {
    fn push(&mut self, key: u64, weight: u32, task: Task) {
        let weight = weight.max(1);
        match self.queues.iter_mut().find(|q| q.key == key) {
            Some(q) => {
                // Latest spawn wins: a weight change applies from the
                // queue's next dispatch onward.
                q.weight = weight;
                q.tasks.push_back(task);
            }
            None => {
                self.queues.push(FairQueue {
                    key,
                    weight,
                    pass: self.clock,
                    tasks: VecDeque::from([task]),
                });
            }
        }
    }

    fn pop(&mut self) -> Option<Task> {
        let next = self
            .queues
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| (q.pass, q.key))?
            .0;
        let q = &mut self.queues[next];
        let task = q.tasks.pop_front().expect("fair queues are never empty");
        self.clock = q.pass;
        q.pass = q.pass.saturating_add(STRIDE1 / u64::from(q.weight));
        if q.tasks.is_empty() {
            self.queues.swap_remove(next);
        }
        Some(task)
    }
}

/// Idle/shutdown coordination, guarded by `Inner::sleep`.
struct SleepState {
    shutdown: bool,
}

struct Inner {
    injector: Mutex<Injector>,
    /// Per-worker deques: owner pushes/pops the back, thieves pop the
    /// front.
    deques: Vec<Mutex<VecDeque<Task>>>,
    sleep: Mutex<SleepState>,
    wake: Condvar,
    /// Tasks currently queued anywhere (injector + deques). Checked
    /// under the `sleep` lock before a worker waits, which is what makes
    /// wakeups race-free: a producer increments *before* notifying.
    queued: AtomicUsize,
    /// Workers currently waiting on `wake` (registered under the `sleep`
    /// lock). Producers skip the lock-and-notify entirely while this is
    /// zero — the common saturated case — keeping the hot spawn path off
    /// the global mutex.
    sleepers: AtomicUsize,
    /// Scheduler observability handles (`DESIGN.md` §11).
    metrics: PoolMetrics,
}

std::thread_local! {
    /// Identity of the current thread when it is a pool worker: the pool
    /// it belongs to and its worker index (for own-deque pushes).
    static WORKER: std::cell::RefCell<Option<(Arc<Inner>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

impl Inner {
    /// Push a task and wake one sleeping worker. `worker` routes to that
    /// worker's own deque; otherwise the task joins the injector at
    /// `priority`. `fair` is the `(key, weight)` tenancy tag of `Normal`
    /// work (ignored for `High`); plain spawns use `(0, 1)`.
    fn push(&self, worker: Option<usize>, priority: Priority, fair: (u64, u32), task: Task) {
        // Count before enqueueing: were the order reversed, a thief could
        // pop the task and decrement first, wrapping the counter to
        // `usize::MAX` and sending every idle worker into a busy-spin
        // until this increment landed. Counting early only makes workers
        // rescan a touch sooner than the task is visible.
        self.queued.fetch_add(1, Ordering::SeqCst);
        match worker {
            Some(w) => {
                self.deques[w].lock().unwrap().push_back(task);
                self.metrics.deque_depth.inc();
            }
            None => {
                let mut inj = self.injector.lock().unwrap();
                match priority {
                    Priority::High => inj.high.push_back(task),
                    Priority::Normal => inj.normal.push(fair.0, fair.1, task),
                }
                drop(inj);
                self.metrics.injector_depth.inc();
            }
        }
        // Wake a sleeper if there is one. The order is what makes this
        // race-free without locking on every push: a worker registers in
        // `sleepers` *before* its final `queued` re-check (both SeqCst).
        // If we read `sleepers == 0` here, our `queued` increment is
        // ordered before that worker's re-check, so it will not sleep;
        // if we read a sleeper, we notify under the lock as usual.
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.sleep.lock().unwrap();
            self.wake.notify_one();
        }
    }

    /// Take one task, exhausting every high-priority source before
    /// touching `Normal` work: the hot end of `me`'s own deque, the
    /// injector's `High` queue, the cold end of a sibling's deque (worker
    /// deques only ever hold `High` fork-join tasks), and finally — iff
    /// `include_normal` — the injector's `Normal` queue. Stealing before
    /// `Normal` is what gives a blocked fork-join caller's phases
    /// cross-worker parallelism even while ingestion work is queued.
    fn find_task(&self, me: Option<usize>, include_normal: bool) -> Option<(Task, Priority)> {
        if let Some(w) = me {
            if let Some(t) = self.deques[w].lock().unwrap().pop_back() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                self.metrics.deque_depth.dec();
                return Some((t, Priority::High));
            }
        }
        if let Some(t) = self.injector.lock().unwrap().high.pop_front() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            self.metrics.injector_depth.dec();
            return Some((t, Priority::High));
        }
        let n = self.deques.len();
        let start = me.map_or(0, |w| w + 1);
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(t) = self.deques[victim].lock().unwrap().pop_front() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                self.metrics.deque_depth.dec();
                self.metrics.steals.inc();
                return Some((t, Priority::High));
            }
        }
        if include_normal {
            if let Some(t) = self.injector.lock().unwrap().normal.pop() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                self.metrics.injector_depth.dec();
                return Some((t, Priority::Normal));
            }
        }
        None
    }

    /// Execute one claimed task with its observability bookkeeping: the
    /// per-worker task count and the per-priority latency histogram.
    fn run_task(&self, me: Option<usize>, task: Task, priority: Priority) {
        self.metrics.count_task(me);
        let _span = SpanGuard::new(self.metrics.task_nanos(priority));
        // A detached task must never take its thread down: panics are
        // contained here (task owners that care — scopes, the runtime
        // executor — install their own handlers underneath).
        let _ = catch_unwind(AssertUnwindSafe(task));
    }
}

/// The persistent worker main loop: run tasks until the pool shuts down
/// and no queued work remains.
fn worker_loop(inner: Arc<Inner>, me: usize) {
    WORKER.with(|w| *w.borrow_mut() = Some((inner.clone(), me)));
    loop {
        if let Some((task, priority)) = inner.find_task(Some(me), true) {
            inner.run_task(Some(me), task, priority);
            continue;
        }
        let mut sleep = inner.sleep.lock().unwrap();
        loop {
            if inner.queued.load(Ordering::SeqCst) > 0 {
                break; // rescan
            }
            if sleep.shutdown {
                return;
            }
            // Register, then re-check `queued` before actually waiting:
            // a producer that missed us in `sleepers` (and so skipped
            // its notify) must have pushed before our registration, and
            // this re-check observes its increment — no lost wakeup.
            inner.sleepers.fetch_add(1, Ordering::SeqCst);
            if inner.queued.load(Ordering::SeqCst) > 0 {
                inner.sleepers.fetch_sub(1, Ordering::SeqCst);
                break; // rescan
            }
            inner.metrics.parks.inc();
            sleep = inner.wake.wait(sleep).unwrap();
            inner.metrics.unparks.inc();
            inner.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Signals shutdown when the last user-facing [`Pool`] handle drops.
/// Workers (which hold only `Arc<Inner>`) drain what is queued, then
/// exit.
struct ShutdownGuard {
    inner: Arc<Inner>,
}

impl Drop for ShutdownGuard {
    fn drop(&mut self) {
        self.inner.sleep.lock().unwrap().shutdown = true;
        self.inner.wake.notify_all();
    }
}

/// A handle to a persistent work-stealing thread pool. Cheap to clone;
/// the pool shuts down (after draining queued tasks) when the last
/// handle drops. See the crate docs for the scheduling model.
#[derive(Clone)]
pub struct Pool {
    inner: Arc<Inner>,
    _shutdown: Arc<ShutdownGuard>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl Pool {
    /// Start a pool of `threads` persistent workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            injector: Mutex::new(Injector::default()),
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(SleepState { shutdown: false }),
            wake: Condvar::new(),
            queued: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            metrics: PoolMetrics::new(threads),
        });
        for me in 0..threads {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name(format!("sgs-exec-{me}"))
                .spawn(move || worker_loop(inner, me))
                .expect("failed to spawn pool worker thread");
        }
        Pool {
            _shutdown: Arc::new(ShutdownGuard {
                inner: inner.clone(),
            }),
            inner,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.inner.deques.len()
    }

    /// The current thread's worker index **in this pool**, if it is one
    /// of this pool's workers.
    fn worker_index(&self) -> Option<usize> {
        WORKER.with(|w| match &*w.borrow() {
            Some((inner, me)) if Arc::ptr_eq(inner, &self.inner) => Some(*me),
            _ => None,
        })
    }

    /// Submit a detached task. A panicking task is contained by its
    /// worker (the worker survives; the payload is dropped) — tasks that
    /// need panic visibility must catch their own. `Normal` work spawned
    /// this way shares fair-share key 0 at weight 1; multi-tenant
    /// callers use [`spawn_fair`](Self::spawn_fair).
    pub fn spawn(&self, priority: Priority, f: impl FnOnce() + Send + 'static) {
        self.inner.push(None, priority, (0, 1), Box::new(f));
    }

    /// Submit a detached `Normal`-priority task under a tenancy `key`
    /// with a fair-share `weight` (clamped to ≥ 1). When several keys
    /// have work queued, the pool dispatches their tasks in proportion
    /// to their weights (stride scheduling over per-key FIFOs) instead
    /// of global FIFO order, so one owner's backlog cannot starve
    /// another's — the scheduler half of the server's tenancy model.
    /// Tasks under one key still dispatch in their spawn order, and the
    /// weight supplied with the latest spawn wins. Key 0 is shared with
    /// plain [`spawn`](Self::spawn).
    pub fn spawn_fair(&self, key: u64, weight: u32, f: impl FnOnce() + Send + 'static) {
        self.inner
            .push(None, Priority::Normal, (key, weight), Box::new(f));
    }

    /// Scoped fork-join: run `f` with a [`Scope`] whose spawned closures
    /// may borrow non-`'static` data from the enclosing frame, exactly
    /// like `std::thread::scope` — but executed by the persistent pool
    /// workers instead of freshly spawned OS threads. `scope` returns
    /// only after every spawned closure has finished; while waiting, the
    /// calling thread executes queued high-priority tasks itself, so the
    /// construct is deadlock-free from any thread (including pool
    /// workers — fork-join nests).
    ///
    /// If `f` or any spawned closure panics, `scope` panics after all
    /// spawned closures have completed (borrowed data is never released
    /// early).
    pub fn scope<'env, F, T>(&self, f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: AtomicUsize::new(0),
                done: Mutex::new(()),
                done_cv: Condvar::new(),
                panic: Mutex::new(None),
            }),
            _scope: std::marker::PhantomData,
            _env: std::marker::PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Help-then-wait until every spawned task is done. This must run
        // even when `f` panicked: tasks borrow from `'env` and must not
        // outlive this frame.
        let me = self.worker_index();
        while scope.state.pending.load(Ordering::SeqCst) > 0 {
            // Only high-priority work is safe to help with: `Normal`
            // ingestion tasks may block (bounded output) and would stall
            // this scope on an unrelated query.
            if let Some((task, priority)) = self.inner.find_task(me, false) {
                self.inner.run_task(me, task, priority);
                continue;
            }
            let guard = scope.state.done.lock().unwrap();
            if scope.state.pending.load(Ordering::SeqCst) > 0 {
                // Completion is signalled under `done` (so the plain
                // wait would already be race-free); the long timeout is
                // only defense-in-depth against a missed help
                // opportunity, rare enough not to cost lock traffic.
                let _ = scope
                    .state
                    .done_cv
                    .wait_timeout(guard, std::time::Duration::from_millis(50))
                    .unwrap();
            }
        }
        let task_panic = scope.state.panic.lock().unwrap().take();
        match (result, task_panic) {
            (Ok(v), None) => v,
            (Err(p), _) | (Ok(_), Some(p)) => resume_unwind(p),
        }
    }
}

/// The process-wide default pool, sized to the machine's available
/// parallelism. Created on first use; lives for the whole process.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        Pool::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    })
}

/// Completion accounting of one [`Pool::scope`] call.
struct ScopeState {
    pending: AtomicUsize,
    done: Mutex<()>,
    done_cv: Condvar,
    /// First panic payload from a spawned task (re-thrown at scope exit).
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A fork-join scope created by [`Pool::scope`]. Mirrors
/// `std::thread::Scope`: `'scope` is the lifetime of the scope itself,
/// `'env` the environment it may borrow from.
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope Pool,
    state: Arc<ScopeState>,
    _scope: std::marker::PhantomData<&'scope mut &'scope ()>,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Fork one closure into the pool at high priority. From a pool
    /// worker the task goes to that worker's own deque (run next, stolen
    /// last); from any other thread it joins the global high-priority
    /// injector.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let state = self.state.clone();
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            if state.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Signal under `done` so the owner's check-then-wait in
                // `Pool::scope` cannot miss the last completion.
                let _guard = state.done.lock().unwrap();
                state.done_cv.notify_all();
            }
        });
        // SAFETY: erasing `'scope` to `'static` is sound because
        // `Pool::scope` does not return (or unwind) until `pending`
        // reaches zero, i.e. until this closure — and everything it
        // borrows from `'scope`/`'env` — has run to completion. The
        // completion decrement above runs even if `f` panics.
        let task: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task) };
        self.pool
            .inner
            .push(self.pool.worker_index(), Priority::High, (0, 1), task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;

    #[test]
    fn spawned_tasks_all_run() {
        let pool = Pool::new(3);
        let counter = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..100 {
            let (c, tx) = (counter.clone(), tx.clone());
            pool.spawn(Priority::Normal, move || {
                c.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..100 {
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn scope_runs_borrowing_tasks_to_completion() {
        let pool = Pool::new(2);
        let mut items = vec![0usize; 64];
        pool.scope(|sc| {
            for (i, item) in items.iter_mut().enumerate() {
                sc.spawn(move || *item = i + 1);
            }
        });
        assert!(items.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn scope_makes_progress_on_single_worker_pool() {
        // More forks than workers: the caller must help execute.
        let pool = Pool::new(1);
        let mut items = [0u8; 32];
        pool.scope(|sc| {
            for item in items.iter_mut() {
                sc.spawn(move || *item = 1);
            }
        });
        assert!(items.iter().all(|&v| v == 1));
    }

    #[test]
    fn nested_scopes_from_pool_tasks() {
        // A Normal task on a 1-worker pool opens a scope that forks
        // again: the worker helps itself through both levels.
        let pool = Pool::new(1);
        let (tx, rx) = mpsc::channel();
        let inner_pool = pool.clone();
        pool.spawn(Priority::Normal, move || {
            let mut outer = vec![0u64; 4];
            inner_pool.scope(|sc| {
                for (i, slot) in outer.iter_mut().enumerate() {
                    let p = &inner_pool;
                    sc.spawn(move || {
                        let mut inner = [0u64; 3];
                        p.scope(|sc2| {
                            for v in inner.iter_mut() {
                                sc2.spawn(move || *v = 1);
                            }
                        });
                        *slot = i as u64 + inner.iter().sum::<u64>();
                    });
                }
            });
            tx.send(outer).unwrap();
        });
        let outer = rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        assert_eq!(outer, vec![3, 4, 5, 6]);
    }

    #[test]
    fn high_priority_dispatches_before_normal() {
        let pool = Pool::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        // Occupy the only worker…
        pool.spawn(Priority::Normal, move || {
            gate_rx.recv().unwrap();
        });
        // …queue Normal before High while it is blocked…
        for (pri, tag) in [(Priority::Normal, "normal"), (Priority::High, "high")] {
            let (order, done_tx) = (order.clone(), done_tx.clone());
            pool.spawn(pri, move || {
                order.lock().unwrap().push(tag);
                done_tx.send(()).unwrap();
            });
        }
        // …then release the gate: the worker must pick High first.
        gate_tx.send(()).unwrap();
        done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .unwrap();
        done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .unwrap();
        assert_eq!(*order.lock().unwrap(), vec!["high", "normal"]);
    }

    #[test]
    fn fair_spawns_dispatch_in_weight_proportion() {
        let pool = Pool::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        // Occupy the only worker so every fair spawn below queues up
        // behind the gate and is dispatched in one deterministic burst.
        pool.spawn(Priority::Normal, move || {
            gate_rx.recv().unwrap();
        });
        for (key, weight, tag, n) in [(1u64, 1u32, "a", 4usize), (2, 2, "b", 4)] {
            for _ in 0..n {
                let (order, done_tx) = (order.clone(), done_tx.clone());
                pool.spawn_fair(key, weight, move || {
                    order.lock().unwrap().push(tag);
                    done_tx.send(()).unwrap();
                });
            }
        }
        gate_tx.send(()).unwrap();
        for _ in 0..8 {
            done_rx
                .recv_timeout(std::time::Duration::from_secs(10))
                .unwrap();
        }
        // Stride scheduling at weights 1:2 (ties toward the lower key):
        // key 2 receives two dispatch slots for each of key 1's, instead
        // of the strict spawn-order burst a FIFO would produce.
        assert_eq!(
            *order.lock().unwrap(),
            vec!["a", "b", "b", "a", "b", "b", "a", "a"]
        );
    }

    #[test]
    fn idle_fair_keys_accrue_no_credit() {
        // A key that sat idle while another ran must re-enter at the
        // current virtual clock, not at zero — otherwise it would burst
        // ahead of the key that kept the pool busy.
        let mut fair = FairNormal::default();
        let noop = || Box::new(|| {}) as Task;
        for _ in 0..3 {
            fair.push(7, 1, noop());
        }
        // Two dispatches with the queue still backlogged: the clock
        // follows key 7's growing pass.
        assert!(fair.pop().is_some());
        assert!(fair.pop().is_some());
        let clock = fair.clock;
        assert!(clock > 0);
        fair.push(9, 1, noop()); // late arrival: starts at `clock`
        let late = fair.queues.iter().find(|q| q.key == 9).unwrap();
        assert_eq!(late.pass, clock);
    }

    #[test]
    fn scope_task_panic_propagates_after_completion() {
        let pool = Pool::new(2);
        let finished = Arc::new(AtomicU64::new(0));
        let fin = finished.clone();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|sc| {
                sc.spawn(|| panic!("forked task failure"));
                for _ in 0..8 {
                    let fin = &fin;
                    sc.spawn(move || {
                        fin.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(result.is_err(), "scope must re-throw the task panic");
        // Sibling tasks all completed before the scope unwound.
        assert_eq!(finished.load(Ordering::SeqCst), 8);
        // The pool survives panicking tasks.
        let mut v = [0u8; 4];
        pool.scope(|sc| {
            for slot in v.iter_mut() {
                sc.spawn(move || *slot = 7);
            }
        });
        assert_eq!(v, [7; 4]);
    }

    #[test]
    fn concurrent_scopes_from_many_threads() {
        let pool = Pool::new(2);
        std::thread::scope(|s| {
            for t in 0..6 {
                let pool = pool.clone();
                s.spawn(move || {
                    for round in 0..20 {
                        let mut items = [0usize; 8];
                        pool.scope(|sc| {
                            for (i, item) in items.iter_mut().enumerate() {
                                sc.spawn(move || *item = t * 1000 + round * 10 + i);
                            }
                        });
                        for (i, &v) in items.iter().enumerate() {
                            assert_eq!(v, t * 1000 + round * 10 + i);
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = global();
        let b = global();
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
        assert!(a.threads() >= 1);
    }

    #[test]
    fn dropping_last_handle_drains_queued_tasks() {
        let (tx, rx) = mpsc::channel();
        {
            let pool = Pool::new(1);
            for i in 0..16 {
                let tx = tx.clone();
                pool.spawn(Priority::Normal, move || {
                    tx.send(i).unwrap();
                });
            }
            // Pool handle drops here with tasks possibly still queued.
        }
        let mut got: Vec<i32> = (0..16)
            .map(|_| rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }
}
