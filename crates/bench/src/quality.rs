//! The matching-quality study (Fig. 9), with ground truth replacing the
//! paper's 20-analyst panel.
//!
//! The paper asked analysts to rate the top-3 matches returned by each
//! summarization format. We substitute an objective equivalent: the
//! archive is seeded, for every query cluster, with *known-similar*
//! variants (lightly jittered copies — "very similar" — and moderately
//! deformed copies — "similar") among shape-diverse decoys engineered to
//! fool weaker summaries (rings and discs with identical CRD statistics,
//! equal-population shapes, …). The **similar rate** of a format is the
//! fraction of its top-3 retrievals that are ground-truth variants of the
//! query — exactly what the human panel was estimating visually.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sgs_core::GridGeometry;
use sgs_summarize::MemberSet;

/// A shape family for the study — diverse enough that shape-blind
/// summaries confuse members of different families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// Filled disc.
    Disc,
    /// Ring (same centroid/radius as a disc — the CRD killer).
    Ring,
    /// Long thin strip.
    Strip,
    /// L-shaped corner.
    Corner,
    /// Two lobes joined by a thin bridge (connectivity matters).
    Dumbbell,
}

/// All families.
pub const SHAPES: [Shape; 5] = [
    Shape::Disc,
    Shape::Ring,
    Shape::Strip,
    Shape::Corner,
    Shape::Dumbbell,
];

impl Shape {
    /// Generate a member set of roughly `n` core points centered at
    /// `(cx, cy)` with scale `s`.
    pub fn generate(self, cx: f64, cy: f64, s: f64, n: usize, rng: &mut StdRng) -> MemberSet {
        let mut cores: Vec<Box<[f64]>> = Vec::with_capacity(n);
        for i in 0..n {
            let u = i as f64 / n as f64;
            let (x, y) = match self {
                Shape::Disc => {
                    let r = s * rng.gen_range(0.0f64..1.0).sqrt();
                    let a = rng.gen_range(0.0..std::f64::consts::TAU);
                    (r * a.cos(), r * a.sin())
                }
                Shape::Ring => {
                    let r = s * rng.gen_range(0.85..1.0);
                    let a = rng.gen_range(0.0..std::f64::consts::TAU);
                    (r * a.cos(), r * a.sin())
                }
                Shape::Strip => (s * (4.0 * u - 2.0), s * 0.25 * rng.gen_range(-1.0..1.0)),
                Shape::Corner => {
                    if rng.gen_bool(0.5) {
                        (s * (2.0 * u - 1.0), -s)
                    } else {
                        (-s, s * (2.0 * u - 1.0))
                    }
                }
                Shape::Dumbbell => {
                    let lobe = if u < 0.45 {
                        -1.5
                    } else if u > 0.55 {
                        1.5
                    } else {
                        0.0
                    };
                    if lobe == 0.0 {
                        (
                            s * rng.gen_range(-1.5..1.5),
                            s * 0.1 * rng.gen_range(-1.0..1.0),
                        )
                    } else {
                        let r = 0.5 * s * rng.gen_range(0.0f64..1.0).sqrt();
                        let a = rng.gen_range(0.0..std::f64::consts::TAU);
                        (s * lobe + r * a.cos(), r * a.sin())
                    }
                }
            };
            cores.push(vec![cx + x, cy + y].into());
        }
        MemberSet::new(cores, vec![])
    }
}

/// Ground-truth relation of an archived cluster to a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// Lightly jittered copy of the query ("very similar").
    VerySimilar,
    /// Moderately deformed copy ("similar").
    Similar,
    /// Unrelated decoy.
    Decoy,
}

/// One archived study cluster with its ground truth.
pub struct StudyEntry {
    /// The cluster's members.
    pub members: MemberSet,
    /// Which query (index) it is a variant of, if any.
    pub query_of: Option<usize>,
    /// Ground-truth relation.
    pub relation: Relation,
}

/// Jitter a member set: positional noise `eps`, dropping each member with
/// probability `drop`.
pub fn perturb(members: &MemberSet, eps: f64, drop: f64, rng: &mut StdRng) -> MemberSet {
    let map = |v: &Vec<Box<[f64]>>, rng: &mut StdRng| -> Vec<Box<[f64]>> {
        let mut out = Vec::with_capacity(v.len());
        for p in v {
            if rng.gen_range(0.0..1.0) < drop {
                continue;
            }
            out.push(
                p.iter()
                    .map(|x| x + rng.gen_range(-eps..eps))
                    .collect::<Box<[f64]>>(),
            );
        }
        out
    };
    MemberSet::new(map(&members.cores, rng), map(&members.edges, rng))
}

/// The generated study: queries plus an archive with ground truth.
pub struct Study {
    /// Query clusters (one per shape family by default).
    pub queries: Vec<MemberSet>,
    /// Archived clusters with their relations.
    pub archive: Vec<StudyEntry>,
    /// Grid geometry used for all SGS construction in the study.
    pub geometry: GridGeometry,
}

/// Build the retrieval study: `n_queries` query clusters across shape
/// families; for each, `n_very` lightly-jittered and `n_similar`
/// moderately-deformed variants are archived among `n_decoys` decoys.
///
/// Two-thirds of the decoys are **confusers**: clusters of a *different*
/// shape family generated with the query's exact scale and population, so
/// their aggregate statistics (centroid-free CRD: radius, density,
/// population) are indistinguishable from the query's — only structure
/// (shape, connectivity, density layout) separates them. This reproduces
/// the paper's argument for why aggregate summaries mis-retrieve. Matching
/// in the study is position-insensitive for every format, so location can
/// never give the answer away.
pub fn build_study(
    n_queries: usize,
    n_very: usize,
    n_similar: usize,
    n_decoys: usize,
    seed: u64,
) -> Study {
    let mut rng = StdRng::seed_from_u64(seed);
    let geometry = GridGeometry::basic(2, 1.0);
    let population = 160;

    let mut queries = Vec::with_capacity(n_queries);
    let mut archive = Vec::new();
    let mut query_shapes = Vec::new();
    let mut query_scales = Vec::new();
    for qi in 0..n_queries {
        let shape = SHAPES[qi % SHAPES.len()];
        // Per-query scale variation so queries are mutually distinct.
        let scale = 2.0 * (1.0 + 0.2 * ((qi / SHAPES.len()) as f64));
        query_shapes.push(shape);
        query_scales.push(scale);
        let (cx, cy) = (rng.gen_range(-40.0..40.0), rng.gen_range(-40.0..40.0));
        let query = shape.generate(cx, cy, scale, population, &mut rng);
        // Very similar: light jitter in place.
        for _ in 0..n_very {
            archive.push(StudyEntry {
                members: perturb(&query, 0.05, 0.02, &mut rng),
                query_of: Some(qi),
                relation: Relation::VerySimilar,
            });
        }
        // Similar: moderate jitter + drop, small translation.
        for _ in 0..n_similar {
            let mut m = perturb(&query, 0.2, 0.15, &mut rng);
            let (dx, dy) = (rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5));
            for p in m.cores.iter_mut().chain(m.edges.iter_mut()) {
                let mut v = p.to_vec();
                v[0] += dx;
                v[1] += dy;
                *p = v.into();
            }
            archive.push(StudyEntry {
                members: m,
                query_of: Some(qi),
                relation: Relation::Similar,
            });
        }
        queries.push(query);
    }
    // Confusers: for each query in rotation, a *different* shape at the
    // query's exact scale and population — aggregate-identical, shape-
    // different. Remaining decoys are random shapes at random scales.
    let n_confusers = n_decoys * 2 / 3;
    for k in 0..n_confusers {
        let qi = k % n_queries.max(1);
        let other = SHAPES[(SHAPES.iter().position(|s| *s == query_shapes[qi]).unwrap()
            + 1
            + k % (SHAPES.len() - 1))
            % SHAPES.len()];
        let (cx, cy) = (rng.gen_range(-40.0..40.0), rng.gen_range(-40.0..40.0));
        let m = other.generate(cx, cy, query_scales[qi], population, &mut rng);
        archive.push(StudyEntry {
            members: m,
            query_of: None,
            relation: Relation::Decoy,
        });
    }
    for _ in n_confusers..n_decoys {
        let shape = SHAPES[rng.gen_range(0..SHAPES.len())];
        let (cx, cy) = (rng.gen_range(-40.0..40.0), rng.gen_range(-40.0..40.0));
        let m = shape.generate(cx, cy, 2.0 * rng.gen_range(0.8..1.4), population, &mut rng);
        archive.push(StudyEntry {
            members: m,
            query_of: None,
            relation: Relation::Decoy,
        });
    }
    Study {
        queries,
        archive,
        geometry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_summarize::Crd;

    #[test]
    fn study_counts() {
        let s = build_study(5, 2, 2, 30, 1);
        assert_eq!(s.queries.len(), 5);
        assert_eq!(s.archive.len(), 5 * 4 + 30);
        let very = s
            .archive
            .iter()
            .filter(|e| e.relation == Relation::VerySimilar)
            .count();
        assert_eq!(very, 10);
    }

    #[test]
    fn study_is_deterministic() {
        let a = build_study(3, 1, 1, 5, 9);
        let b = build_study(3, 1, 1, 5, 9);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn ring_and_disc_share_crd_statistics() {
        // The decoy construction the study relies on: a ring and a disc of
        // the same scale/population have nearly identical CRDs.
        let mut rng = StdRng::seed_from_u64(3);
        let ring = Shape::Ring.generate(0.0, 0.0, 2.0, 200, &mut rng);
        let disc = Shape::Disc.generate(0.0, 0.0, 2.0, 200, &mut rng);
        let cr = Crd::from_members(&ring).unwrap();
        let cd = Crd::from_members(&disc).unwrap();
        assert!(cr.distance(&cd) < 0.2, "CRD distance {}", cr.distance(&cd));
    }

    #[test]
    fn perturb_preserves_most_members() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = Shape::Disc.generate(0.0, 0.0, 2.0, 100, &mut rng);
        let p = perturb(&m, 0.05, 0.1, &mut rng);
        assert!(p.population() >= 75 && p.population() <= 100);
    }
}
