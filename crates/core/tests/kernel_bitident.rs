//! The bit-exactness contract of the batched distance kernels
//! (`DESIGN.md` §13): for arbitrary dimensionalities, candidate counts,
//! and inputs, `kernel::dist_sq_batch` returns exactly the bits
//! `dist_sq` would — with NaN results compared as NaN-for-NaN, since
//! IEEE 754 leaves NaN sign/payload bits unspecified and the optimizer
//! may pick different ones per code path — and the threshold filter
//! selects exactly the scalar path's matches.

use proptest::prelude::*;
use sgs_core::{dist_sq, kernel};

/// Inject non-finite values deterministically: `sel` picks which special
/// value (if any) replaces the generated coordinate.
fn specialize(x: f64, sel: u8) -> f64 {
    match sel {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        _ => x,
    }
}

proptest! {
    /// Batched squared distances are `to_bits`-identical to scalar
    /// `dist_sq` across dims 1–8 and slab lengths 0–257, with NaN/∞
    /// sprinkled over both query and candidates.
    #[test]
    fn dist_sq_batch_is_bit_identical_to_scalar(
        dim in 1usize..9,
        n in 0usize..258,
        raw in prop::collection::vec(-1e3f64..1e3, 8),
        sels in prop::collection::vec(0u64..64, 16),
        slab_raw in prop::collection::vec(-1e3f64..1e3, 258 * 8),
    ) {
        let query: Vec<f64> = (0..dim)
            .map(|i| specialize(raw[i], (sels[i] % 32) as u8))
            .collect();
        let slab: Vec<f64> = (0..n * dim)
            .map(|k| specialize(slab_raw[k], (sels[k % 16] >> (k % 5)) as u8 % 32))
            .collect();
        let mut got = Vec::new();
        kernel::dist_sq_batch(&query, &slab, &mut got);
        prop_assert_eq!(got.len(), n);
        for j in 0..n {
            let candidate = &slab[j * dim..j * dim + dim];
            let want = dist_sq(&query, candidate);
            if want.is_nan() {
                prop_assert!(got[j].is_nan(), "dim {} point {}: batched {:?} vs NaN", dim, j, got[j]);
            } else {
                prop_assert_eq!(
                    got[j].to_bits(),
                    want.to_bits(),
                    "dim {} point {}: batched {:?} vs scalar {:?}",
                    dim, j, got[j], want
                );
            }
        }
    }

    /// The threshold filter visits exactly the indices the scalar
    /// comparison accepts, in slab order — NaN distances never match
    /// (`NaN <= θ²` is false), exact-threshold distances always do.
    #[test]
    fn for_each_within_matches_scalar_filter(
        dim in 1usize..9,
        n in 0usize..258,
        theta_sq in 0.0f64..1e5,
        sels in prop::collection::vec(0u64..64, 16),
        raw in prop::collection::vec(-1e2f64..1e2, 8),
        slab_raw in prop::collection::vec(-1e2f64..1e2, 258 * 8),
    ) {
        let query: Vec<f64> = (0..dim)
            .map(|i| specialize(raw[i], (sels[i] % 32) as u8))
            .collect();
        let slab: Vec<f64> = (0..n * dim)
            .map(|k| specialize(slab_raw[k], (sels[k % 16] >> (k % 5)) as u8 % 32))
            .collect();
        let mut got = Vec::new();
        kernel::for_each_within(&query, &slab, theta_sq, |j| got.push(j));
        let want: Vec<usize> = (0..n)
            .filter(|&j| dist_sq(&query, &slab[j * dim..j * dim + dim]) <= theta_sq)
            .collect();
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(
            kernel::any_within(&query, &slab, theta_sq),
            !want.is_empty()
        );
    }
}
