//! In-process loopback tests of the network front-end: a real
//! `sgs-server` on a loopback TCP port, driven by real `sgs-client`
//! sessions — proving the wire path preserves the runtime's isolation
//! and determinism guarantees (`DESIGN.md` §9).

use std::collections::BTreeSet;

use streamsum::prelude::*;
use streamsum::wire::WireWindow;

const DETECT: &str = "DETECT DensityBasedClusters f+s FROM gmti \
                      USING theta_range = 0.6 AND theta_cnt = 6 \
                      IN Windows WITH win = 1000 AND slide = 250";

fn gmti(n: usize) -> Vec<Point> {
    generate_gmti(&GmtiConfig {
        n_records: n,
        ..GmtiConfig::default()
    })
}

/// Start an in-process server on a loopback port, returning its address
/// and a shutdown handle (the accept loop runs on a background thread).
fn start_server() -> (std::net::SocketAddr, ServerHandle) {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    std::thread::spawn(move || server.run());
    (addr, handle)
}

/// Canonical bytes of a polled window set (one `Windows` frame), for
/// byte-identity comparisons across sessions and against solo runs.
fn window_bytes(windows: &[(WindowId, WindowOutput)]) -> Vec<u8> {
    Frame::Windows {
        query: 0,
        windows: windows
            .iter()
            .map(|(window, clusters)| WireWindow {
                window: *window,
                clusters: clusters.clone(),
            })
            .collect(),
    }
    .encode()
}

#[test]
fn concurrent_sessions_are_isolated_and_byte_identical_to_a_solo_run() {
    let stream = gmti(4000);

    // Ground truth: a solo in-process Runtime over the same plan + data.
    let expected = {
        let mut rt = Runtime::new();
        rt.register_stream("gmti", 2);
        let Submission::Continuous(id) = rt.submit(DETECT).unwrap() else {
            panic!("expected a continuous registration");
        };
        rt.push_batch(&stream).unwrap();
        rt.quiesce().unwrap();
        let windows = rt.poll(id).unwrap();
        assert!(!windows.is_empty());
        window_bytes(&windows)
    };

    let (addr, handle) = start_server();
    // Two concurrent sessions, each replaying the same stream into its
    // own query namespace.
    let outcomes: Vec<(u64, Vec<u8>, u64)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let stream = &stream;
                scope.spawn(move || {
                    let mut client = Session::connect(addr).unwrap();
                    let q = client.detect(DETECT).unwrap();
                    client.feed("gmti", stream).unwrap();
                    client.quiesce().unwrap();
                    let windows = client.query(q).poll(0).unwrap();
                    let stats = client.query(q).stats().unwrap();
                    assert_eq!(stats.stats.points, stream.len() as u64);
                    assert_eq!(stats.stats.windows, windows.len() as u64);
                    // The session sees exactly its own registry.
                    let listing = client.queries().unwrap();
                    assert_eq!(listing.len(), 1);
                    assert_eq!(listing[0].query, q);
                    let report = client.query(q).cancel().unwrap();
                    assert_eq!(report.points, stream.len() as u64);
                    client.goodbye().unwrap();
                    (q, window_bytes(&windows), stats.stats.windows)
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    handle.shutdown();

    // Isolated namespaces: both sessions own a query named Q0.
    let ids: BTreeSet<u64> = outcomes.iter().map(|(q, _, _)| *q).collect();
    assert_eq!(ids, BTreeSet::from([0]), "each session numbers from Q0");
    // Determinism across the wire: every session's windows are
    // byte-identical to the solo in-process run.
    for (_, bytes, windows) in &outcomes {
        assert!(*windows > 0);
        assert_eq!(
            bytes, &expected,
            "remote windows diverged from the solo run"
        );
    }
}

#[test]
fn cross_session_handles_do_not_resolve_and_bad_requests_fail_cleanly() {
    let (addr, handle) = start_server();
    let mut alice = Session::connect(addr).unwrap();
    let mut bob = Session::connect(addr).unwrap();

    let qa = alice.detect(DETECT).unwrap();
    assert_eq!(qa, 0);
    // Bob never registered anything: Alice's Q0 does not resolve in his
    // session, so he can neither read nor cancel her query.
    for result in [
        bob.query(0).poll(0).map(|_| ()),
        bob.query(0).cancel().map(|_| ()),
    ] {
        match result {
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, streamsum::wire::ErrorCode::UnknownQuery)
            }
            other => panic!("expected UnknownQuery, got {other:?}"),
        }
    }
    assert!(bob.queries().unwrap().is_empty());

    // Unknown stream and dimension mismatches are rejected with their
    // own codes, and the session stays usable afterwards.
    match alice.feed("nope", &gmti(10)) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, streamsum::wire::ErrorCode::UnknownStream)
        }
        other => panic!("expected UnknownStream, got {other:?}"),
    }
    let bad = vec![Point::new(vec![0.0, 0.0, 0.0], 0)];
    match alice.feed("gmti", &bad) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, streamsum::wire::ErrorCode::Dimension)
        }
        other => panic!("expected Dimension, got {other:?}"),
    }
    // A bad statement reports a Plan error without killing the session.
    match alice.submit("DETECT gibberish") {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, streamsum::wire::ErrorCode::Plan)
        }
        other => panic!("expected Plan error, got {other:?}"),
    }
    alice.feed("gmti", &gmti(100)).unwrap();
    alice.quiesce().unwrap();
    assert_eq!(alice.query(qa).stats().unwrap().stats.points, 100);

    alice.goodbye().unwrap();
    bob.goodbye().unwrap();
    handle.shutdown();
}

#[test]
fn matching_statements_run_against_the_shared_history_over_the_wire() {
    let (addr, handle) = start_server();
    let mut client = Session::connect(addr).unwrap();
    let q = client.detect(DETECT).unwrap();
    client.feed("gmti", &gmti(5000)).unwrap();
    client.quiesce().unwrap();
    let windows = client.query(q).poll(0).unwrap();
    let cluster = windows
        .iter()
        .rev()
        .flat_map(|(_, clusters)| clusters.iter())
        .max_by_key(|c| c.population())
        .expect("some cluster extracted")
        .sgs
        .clone();
    client.bind("Cnow", &cluster).unwrap();
    let Submitted::Matches {
        candidates,
        matches,
        ..
    } = client
        .submit(
            "GIVEN DensityBasedClusters Cnow \
             SELECT DensityBasedClusters Cpast FROM History \
             WHERE Distance(Cnow, Cpast) <= 0.25",
        )
        .unwrap()
    else {
        panic!("expected immediate match execution");
    };
    assert!(candidates > 0);
    assert!(
        !matches.is_empty(),
        "the archived twin of the bound cluster must match"
    );
    // An unbound GIVEN name is its own error class.
    match client.submit(
        "GIVEN DensityBasedClusters Ghost \
         SELECT DensityBasedClusters Cpast FROM History \
         WHERE Distance(Ghost, Cpast) <= 0.25",
    ) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, streamsum::wire::ErrorCode::UnknownBinding)
        }
        other => panic!("expected UnknownBinding, got {other:?}"),
    }
    client.goodbye().unwrap();
    handle.shutdown();
}

#[test]
fn poll_max_pages_through_buffered_windows() {
    let (addr, handle) = start_server();
    let mut client = Session::connect(addr).unwrap();
    let q = client.detect(DETECT).unwrap();
    client.feed("gmti", &gmti(3000)).unwrap();
    client.quiesce().unwrap();
    let total = client.query(q).stats().unwrap().stats.windows;
    assert!(total > 2);
    let first = client.query(q).poll(2).unwrap();
    assert_eq!(first.len(), 2);
    let rest = client.query(q).poll(0).unwrap();
    assert_eq!(rest.len() as u64, total - 2);
    let ids: Vec<u64> = first.iter().chain(rest.iter()).map(|(w, _)| w.0).collect();
    assert_eq!(ids, (0..total).collect::<Vec<_>>(), "oldest first, no gaps");
    client.goodbye().unwrap();
    handle.shutdown();
}
