//! Remote analyst console: the `runtime_console` workflow over a real
//! TCP socket — DETECT statements register continuous queries on a
//! `streamsum-server`, `feed` generates stream data client-side and
//! ships it over the wire, windows come back as `sgs-wire` frames, and
//! GIVEN statements match bound clusters against the server's shared
//! history. `subscribe` switches a query to server-push delivery: the
//! server sends `Windows` frames as they are produced, no polling.
//!
//! Point it at a running server:
//!
//! ```text
//! cargo run --release -p sgs-server --bin streamsum-server -- --addr 127.0.0.1:7878 &
//! REMOTE_CONSOLE_ADDR=127.0.0.1:7878 cargo run --release --example remote_console
//! ```
//!
//! Against a server started with `--auth-token`, pass the shared secret
//! with `--token <secret>` (or `REMOTE_CONSOLE_TOKEN`).
//!
//! With no `REMOTE_CONSOLE_ADDR` (or `--addr`) it spins up an
//! in-process server on a loopback port and talks to that — still
//! through the full TCP + wire-protocol path.
//!
//! Scriptable from a pipe exactly like `runtime_console`, e.g.:
//!
//! ```text
//! printf 'DETECT DensityBasedClusters f+s FROM gmti USING theta_range = 0.6 \
//! AND theta_cnt = 8 IN Windows WITH win = 4000 AND slide = 1000\nfeed gmti 20000\n\
//! bind Cnow\nGIVEN DensityBasedClusters Cnow SELECT DensityBasedClusters FROM History \
//! WHERE Distance(Cnow, Cnow) <= 0.3\nstats\nquit\n' | cargo run --release --example remote_console
//! ```

use std::collections::HashMap;
use std::io::{BufRead, Write as _};
use std::time::Duration;

use streamsum::prelude::*;

/// A transport-class failure described without the `error:` marker (the
/// CI transcript grep treats that as a statement failure; a dead
/// transport is a different condition with a different exit path).
fn transport_summary(e: &ClientError) -> Option<String> {
    e.is_transient().then(|| match e {
        ClientError::Timeout => {
            "the server stopped answering (request deadline expired)".to_string()
        }
        ClientError::GoAway {
            reason,
            drain_millis,
        } => format!(
            "the server is shutting down ({reason}) — {:.1}s left to finish up",
            *drain_millis as f64 / 1000.0
        ),
        _ => "the connection to the server was lost".to_string(),
    })
}

/// Statement failures are reported inline and the console keeps
/// running; a dead transport means nothing further can work — say so
/// cleanly and exit non-zero so scripts notice.
fn bail_if_disconnected(e: &ClientError) {
    if let Some(why) = transport_summary(e) {
        println!("{why} — closing the console");
        std::process::exit(1);
    }
}

/// [`bail_if_disconnected`] for helper results that box their errors.
fn bail_if_disconnected_boxed(e: &(dyn std::error::Error + 'static)) {
    if let Some(client_error) = e.downcast_ref::<ClientError>() {
        bail_if_disconnected(client_error);
    }
}

const HELP: &str = "\
commands:
  DETECT ...                register a continuous query on the server (Fig. 2 syntax)
  GIVEN ...                 run a matching query against the server's shared history (Fig. 3 syntax)
  feed <stream> <n>         generate n tuples client-side (gmti | stt) and ship them over the wire
  bind <name> [Qk]          bind the largest cluster of query Qk's newest window (default: first query with one)
  subscribe Qk [<stream> <n>]  server-push: stream Qk's windows as they arrive (stops after 2s of
                            quiet); with a stream and count, feeds that data first so the
                            subscription's backlog arrives as pushed frames
  stats                     per-query table: state, windows, clusters, archive, latency
  metrics                   server-wide metric registry snapshot (all sessions and layers)
  pause Qk | resume Qk | cancel Qk
  help | quit";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Explicit address → talk to that server; otherwise serve ourselves
    // on a loopback port (the wire path is identical either way).
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let addr_arg = flag("--addr").or_else(|| std::env::var("REMOTE_CONSOLE_ADDR").ok());
    let token = flag("--token").or_else(|| std::env::var("REMOTE_CONSOLE_TOKEN").ok());
    let config = match token {
        Some(secret) => ClientConfig::new().with_auth_token(secret),
        None => ClientConfig::new(),
    };
    let mut client = match addr_arg {
        Some(addr) => {
            println!("remote console — connecting to {addr}");
            match Session::connect_with(addr.as_str(), config) {
                Ok(client) => client,
                Err(e) if e.is_unauthorized() => {
                    println!("the server refused the credential (pass --token <secret>) — closing the console");
                    std::process::exit(1);
                }
                Err(e) => {
                    let why = transport_summary(&e)
                        .unwrap_or_else(|| "the server refused the session".to_string());
                    println!("{why} — closing the console");
                    std::process::exit(1);
                }
            }
        }
        None => {
            let mut server_config = ServerConfig::default();
            server_config.runtime.metrics = true; // so `metrics` shows live values
            let server = Server::bind("127.0.0.1:0", server_config)?;
            let addr = server.local_addr()?;
            std::thread::spawn(move || server.run());
            println!("remote console — no --addr/REMOTE_CONSOLE_ADDR, serving myself on {addr}");
            Session::connect_with(addr, config)?
        }
    };

    // Newest window output per session-local query id, for `bind`.
    let mut newest: HashMap<u64, WindowOutput> = HashMap::new();

    println!("{HELP}");
    let stdin = std::io::stdin();
    loop {
        print!("sgs> ");
        std::io::stdout().flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        let cmd = words[0].to_ascii_lowercase();
        match cmd.as_str() {
            "quit" | "exit" => break,
            "help" => println!("{HELP}"),
            "feed" => match feed(&mut client, &mut newest, &words) {
                Ok(summary) => println!("{summary}"),
                Err(e) => {
                    bail_if_disconnected_boxed(e.as_ref());
                    println!("error: {e}");
                }
            },
            "bind" => match bind(&mut client, &newest, &words) {
                Ok(msg) => println!("{msg}"),
                Err(e) => {
                    bail_if_disconnected_boxed(e.as_ref());
                    println!("error: {e}");
                }
            },
            "subscribe" => match parse_qid(words.get(1).copied()) {
                Some(id) => match subscribe(&mut client, &mut newest, id, &words[2..]) {
                    Ok(msg) => println!("{msg}"),
                    Err(e) => {
                        bail_if_disconnected_boxed(e.as_ref());
                        println!("error: {e}");
                    }
                },
                None => println!("usage: subscribe Qk [<gmti|stt> <n>]"),
            },
            "stats" => match client.queries() {
                Ok(queries) => print_stats(&queries),
                Err(e) => {
                    bail_if_disconnected(&e);
                    println!("error: {e}");
                }
            },
            "metrics" => match client.metrics() {
                Ok(metrics) => print_metrics(&metrics),
                Err(e) => {
                    bail_if_disconnected(&e);
                    println!("error: {e}");
                }
            },
            "pause" | "resume" | "cancel" => match parse_qid(words.get(1).copied()) {
                Some(id) => {
                    let result = match cmd.as_str() {
                        "pause" => client.query(id).pause().map(|()| format!("Q{id} paused")),
                        "resume" => client.query(id).resume().map(|()| format!("Q{id} resumed")),
                        _ => client.query(id).cancel().map(|stats| {
                            newest.remove(&id);
                            format!(
                                "Q{id} cancelled after {} windows, {} archived patterns",
                                stats.windows, stats.archived
                            )
                        }),
                    };
                    match result {
                        Ok(msg) => println!("{msg}"),
                        Err(e) => {
                            bail_if_disconnected(&e);
                            println!("error: {e}");
                        }
                    }
                }
                None => println!("usage: {} Qk", words[0]),
            },
            _ => match client.submit(line) {
                Ok(Submitted::Continuous(id)) => println!("registered Q{id}"),
                Ok(Submitted::Matches {
                    candidates,
                    refined,
                    matches,
                }) => {
                    println!(
                        "{candidates} candidates → {refined} refined → {} matches",
                        matches.len()
                    );
                    for m in matches.iter().take(5) {
                        println!("  pattern {}: distance {:.4}", m.pattern, m.distance);
                    }
                }
                Err(e) => {
                    bail_if_disconnected(&e);
                    println!("error: {e}");
                }
            },
        }
    }
    // Final accounting on exit.
    if let Ok(queries) = client.queries() {
        print_stats(&queries);
    }
    if let Err(e) = client.goodbye() {
        bail_if_disconnected(&e);
        return Err(e.into());
    }
    Ok(())
}

/// `feed <stream> <n>`: generate client-side, ship, quiesce, then drain
/// every query's windows over the wire so `bind` sees the newest.
fn feed(
    client: &mut Session,
    newest: &mut HashMap<u64, WindowOutput>,
    words: &[&str],
) -> Result<String, Box<dyn std::error::Error>> {
    let (stream, n) = match words {
        [_, stream, n] => (stream.to_ascii_lowercase(), n.parse::<usize>()?),
        _ => return Err("usage: feed <gmti|stt> <n>".into()),
    };
    let points = match stream.as_str() {
        "gmti" => generate_gmti(&GmtiConfig {
            n_records: n,
            ..GmtiConfig::default()
        }),
        "stt" => generate_stt(&SttConfig {
            n_records: n,
            ..SttConfig::default()
        }),
        other => return Err(format!("unknown stream {other:?} (try gmti or stt)").into()),
    };
    client.feed(&stream, &points)?;
    client.quiesce()?;
    let mut parts = Vec::new();
    for q in client.queries()? {
        if q.state == WireQueryState::Cancelled {
            continue;
        }
        let windows = client.query(q.query).poll(0)?;
        if let Some((_, clusters)) = windows.last() {
            newest.insert(q.query, clusters.clone());
        }
        parts.push(format!(
            "Q{}: +{} windows ({} clusters)",
            q.query,
            windows.len(),
            windows.iter().map(|(_, c)| c.len()).sum::<usize>()
        ));
    }
    if parts.is_empty() {
        parts.push("no live queries — submit a DETECT statement first".into());
    }
    Ok(format!("fed {n} tuples of {stream} → {}", parts.join(", ")))
}

/// `subscribe Qk [<stream> <n>]`: switch the query to server-push
/// delivery and stream window batches as the server sends them. With a
/// stream and count, that data is fed (without draining) first, so the
/// subscription's backlog arrives as genuinely pushed frames. The
/// console is a line-driven loop, so the demo is bounded: after two
/// seconds with no pushed frame it unsubscribes and hands the prompt
/// back (a long-lived consumer would just keep iterating the handle).
fn subscribe(
    client: &mut Session,
    newest: &mut HashMap<u64, WindowOutput>,
    id: u64,
    rest: &[&str],
) -> Result<String, Box<dyn std::error::Error>> {
    match rest {
        [] => {}
        [stream, n] => {
            let stream = stream.to_ascii_lowercase();
            let n = n.parse::<usize>()?;
            let points = match stream.as_str() {
                "gmti" => generate_gmti(&GmtiConfig {
                    n_records: n,
                    ..GmtiConfig::default()
                }),
                "stt" => generate_stt(&SttConfig {
                    n_records: n,
                    ..SttConfig::default()
                }),
                other => return Err(format!("unknown stream {other:?} (try gmti or stt)").into()),
            };
            client.feed(&stream, &points)?;
            client.quiesce()?;
        }
        _ => return Err("usage: subscribe Qk [<gmti|stt> <n>]".into()),
    }
    let mut sub = client.subscribe(id)?;
    println!("subscribed to Q{id} — streaming pushed windows (quiet for 2s ends the stream)");
    let mut batches = 0usize;
    let mut windows = 0usize;
    let mut last: Option<(WindowId, WindowOutput)> = None;
    while let Some(batch) = sub.wait_windows(Duration::from_secs(2))? {
        batches += 1;
        for (window, clusters) in batch {
            windows += 1;
            println!(
                "  pushed {window}: {} clusters, {} points",
                clusters.len(),
                clusters.iter().map(|c| c.population()).sum::<usize>()
            );
            last = Some((window, clusters));
        }
    }
    let leftover = sub.unsubscribe()?;
    windows += leftover.len();
    if let Some((window, clusters)) = leftover.into_iter().last().or(last) {
        let _ = window;
        newest.insert(id, clusters);
    }
    Ok(format!(
        "Q{id} unsubscribed after {batches} pushed batches ({windows} windows)"
    ))
}

/// `bind <name> [Qk]`: bind the largest cluster of a query's newest
/// window on the server.
fn bind(
    client: &mut Session,
    newest: &HashMap<u64, WindowOutput>,
    words: &[&str],
) -> Result<String, Box<dyn std::error::Error>> {
    let name = words.get(1).ok_or("usage: bind <name> [Qk]")?;
    let id = match words.get(2) {
        Some(w) => parse_qid(Some(w)).ok_or("bad query id (expected Qk)")?,
        None => *newest
            .keys()
            .min()
            .ok_or("no query has emitted a window yet")?,
    };
    let output = newest
        .get(&id)
        .ok_or("that query has not emitted a window yet")?;
    let cluster = output
        .iter()
        .max_by_key(|c| c.population())
        .ok_or("newest window is empty")?;
    client.bind(name, &cluster.sgs)?;
    Ok(format!(
        "{name} := largest cluster of Q{id}'s newest window ({} members, {} cells)",
        cluster.population(),
        cluster.sgs.volume()
    ))
}

/// Accept `Q3` or `3`.
fn parse_qid(word: Option<&str>) -> Option<u64> {
    let w = word?;
    let digits = w
        .strip_prefix('Q')
        .or_else(|| w.strip_prefix('q'))
        .unwrap_or(w);
    digits.parse().ok()
}

fn print_stats(queries: &[WireQuery]) {
    if queries.is_empty() {
        println!("no queries registered");
        return;
    }
    println!(
        "{:<5} {:<10} {:>9} {:>8} {:>8} {:>9} {:>9} {:>12} {:>11}",
        "id", "state", "points", "windows", "dropped", "clusters", "archived", "bytes", "ms/window"
    );
    for q in queries {
        let ms_per_window = if q.stats.windows == 0 {
            0.0
        } else {
            q.stats.busy_nanos as f64 / 1e6 / q.stats.windows as f64
        };
        println!(
            "{:<5} {:<10} {:>9} {:>8} {:>8} {:>9} {:>9} {:>12} {:>11.2}",
            format!("Q{}", q.query),
            format!("{:?}", q.state),
            q.stats.points,
            q.stats.windows,
            q.stats.windows_dropped,
            q.stats.clusters,
            q.stats.archived,
            q.stats.archive_bytes,
            ms_per_window,
        );
    }
}

/// `metrics`: the server's whole registry as one table. Histograms get
/// their count, mean, and tail quantiles; everything is nanoseconds
/// unless the name says otherwise.
fn print_metrics(metrics: &[WireMetric]) {
    if metrics.is_empty() {
        println!("no metrics — start the server with metrics enabled (--metrics-addr)");
        return;
    }
    println!(
        "{:<55} {:>14} {:>10} {:>10} {:>10}",
        "metric", "value/count", "mean", "p95", "max"
    );
    for m in metrics {
        match m.value {
            WireMetricValue::Counter(v) => {
                println!("{:<55} {:>14}", m.name, v);
            }
            WireMetricValue::Gauge(v) => {
                println!("{:<55} {:>14}", m.name, v);
            }
            WireMetricValue::Histogram {
                count,
                sum,
                max,
                p95,
                ..
            } => {
                let mean = sum.checked_div(count).unwrap_or(0);
                println!(
                    "{:<55} {:>14} {:>10} {:>10} {:>10}",
                    m.name, count, mean, p95, max
                );
            }
        }
    }
}
