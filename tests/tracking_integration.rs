//! Cluster tracking over real extractor output: convoys in a GMTI stream
//! must keep stable identities while they live, and the event stream must
//! stay consistent with the per-window assignments.

use std::collections::{HashMap, HashSet};

use streamsum::csgs::{ClusterTracker, Event, TrackId};
use streamsum::prelude::*;

fn run_tracked(n_records: usize) -> Vec<(WindowId, Vec<TrackId>, Vec<Event>)> {
    let query = ClusterQuery::new(0.6, 8, 2, WindowSpec::count(3000, 750).unwrap()).unwrap();
    let mut engine = WindowEngine::new(query.window, 2);
    let mut csgs = CSgs::new(query);
    let mut tracker = ClusterTracker::new();
    let stream = generate_gmti(&GmtiConfig {
        n_records,
        n_convoys: 6,
        ..GmtiConfig::default()
    });
    let mut outs = Vec::new();
    let mut tracked = Vec::new();
    for p in stream {
        engine.push(p, &mut csgs, &mut outs).unwrap();
        for (w, clusters) in outs.drain(..) {
            let tw = tracker.observe(w, &clusters);
            tracked.push((w, tw.tracks, tw.events));
        }
    }
    tracked
}

#[test]
fn tracks_are_unique_within_each_window() {
    for (w, tracks, _) in run_tracked(15_000) {
        let set: HashSet<_> = tracks.iter().collect();
        assert_eq!(set.len(), tracks.len(), "duplicate track in {w}");
    }
}

#[test]
fn big_convoys_keep_identity_across_windows() {
    // At slide = win/4, convoys survive several windows; at least one
    // track must persist over 4+ consecutive windows.
    let tracked = run_tracked(15_000);
    let mut spans: HashMap<TrackId, (u64, u64)> = HashMap::new();
    for (w, tracks, _) in &tracked {
        for t in tracks {
            let e = spans.entry(*t).or_insert((w.0, w.0));
            e.0 = e.0.min(w.0);
            e.1 = e.1.max(w.0);
        }
    }
    let longest = spans.values().map(|(a, b)| b - a + 1).max().unwrap_or(0);
    assert!(longest >= 4, "longest track span only {longest} windows");
}

#[test]
fn births_match_first_appearances() {
    let tracked = run_tracked(12_000);
    let mut seen: HashSet<TrackId> = HashSet::new();
    for (w, tracks, events) in &tracked {
        let born: HashSet<TrackId> = events
            .iter()
            .filter_map(|e| match e {
                Event::Born(t) => Some(*t),
                _ => None,
            })
            .collect();
        for t in tracks {
            let new = seen.insert(*t);
            if new {
                // First appearance must be a birth OR a split fragment.
                let is_fragment = events
                    .iter()
                    .any(|e| matches!(e, Event::Split { fragments, .. } if fragments.contains(t)));
                assert!(
                    born.contains(t) || is_fragment,
                    "{w}: track {t:?} appeared without a Born/Split event"
                );
            }
        }
    }
}

#[test]
fn died_tracks_do_not_reappear() {
    let tracked = run_tracked(12_000);
    let mut dead: HashSet<TrackId> = HashSet::new();
    for (w, tracks, events) in &tracked {
        for t in tracks {
            assert!(!dead.contains(t), "{w}: dead track {t:?} reappeared");
        }
        for e in events {
            match e {
                Event::Died(t) => {
                    dead.insert(*t);
                }
                Event::Merged { absorbed, .. } => {
                    dead.extend(absorbed.iter().copied());
                }
                _ => {}
            }
        }
    }
    assert!(!dead.is_empty(), "no track ever ended — stream too static");
}
