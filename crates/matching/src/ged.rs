//! Suboptimal graph edit distance for SkPS matching (§8.2, \[13\]).
//!
//! Neuhaus, Riesen & Bunke's bipartite approximation: build an
//! `(n+m) × (n+m)` cost matrix of node substitutions (top-left), deletions
//! (top-right diagonal) and insertions (bottom-left diagonal), solve the
//! assignment with the Hungarian algorithm, and read the resulting edit
//! cost. Local edge structure enters through per-node degree differences —
//! the standard "node + adjacent edges" cost model.

use sgs_summarize::SkPs;

use crate::hungarian::hungarian;

/// Normalized (0–1) approximate graph edit distance between two SkPS
/// summaries.
///
/// Substituting node `a` by node `b` costs a normalized positional
/// distance plus half the degree difference (each missing/extra incident
/// edge will be charged once from either endpoint). Deleting or inserting
/// a node costs 1 plus half its degree.
pub fn graph_edit_distance(a: &SkPs, b: &SkPs) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 && m == 0 {
        return 0.0;
    }
    if n == 0 || m == 0 {
        return 1.0;
    }
    let deg = |s: &SkPs| {
        let mut d = vec![0.0f64; s.len()];
        for (x, y) in &s.edges {
            d[*x as usize] += 1.0;
            d[*y as usize] += 1.0;
        }
        d
    };
    let da = deg(a);
    let db = deg(b);

    // Positional scale: the larger MBR diagonal of the two node sets, so
    // substitution costs are scale-free.
    let scale = {
        let spread = |s: &SkPs| -> f64 {
            let dim = s.points[0].len();
            let mut lo = vec![f64::INFINITY; dim];
            let mut hi = vec![f64::NEG_INFINITY; dim];
            for p in &s.points {
                for d in 0..dim {
                    lo[d] = lo[d].min(p[d]);
                    hi[d] = hi[d].max(p[d]);
                }
            }
            lo.iter()
                .zip(hi.iter())
                .map(|(l, h)| (h - l) * (h - l))
                .sum::<f64>()
                .sqrt()
        };
        spread(a).max(spread(b)).max(1e-9)
    };

    let size = n + m;
    const FORBIDDEN: f64 = 1e12;
    let mut cost = vec![FORBIDDEN; size * size];
    // Substitutions: flatten `b`'s nodes into one slab once, then build
    // each row in a single fused pass over the batched distance kernel
    // (bit-identical to the former per-pair `sgs_core::dist` — `sqrt` of
    // an identical square).
    let b_slab: Vec<f64> = b.points.iter().flat_map(|p| p.iter().copied()).collect();
    for i in 0..n {
        let row = &mut cost[i * size..(i + 1) * size];
        let da_i = da[i];
        sgs_core::kernel::for_each_dist_sq(&a.points[i], &b_slab, |j, d| {
            let pos = (d.sqrt() / scale).min(1.0);
            row[j] = pos + (da_i - db[j]).abs() / 2.0;
        });
    }
    // Deletions (node i of a → ε) on the diagonal of the top-right block.
    for i in 0..n {
        cost[i * size + (m + i)] = 1.0 + da[i] / 2.0;
    }
    // Insertions (ε → node j of b) on the diagonal of the bottom-left block.
    for j in 0..m {
        cost[(n + j) * size + j] = 1.0 + db[j] / 2.0;
    }
    // ε → ε completions cost nothing.
    for i in 0..m {
        for j in 0..n {
            cost[(n + i) * size + (m + j)] = 0.0;
        }
    }

    let (_, total) = hungarian(&cost, size);
    // Normalize by the worst case: delete all of a, insert all of b.
    let worst: f64 = da.iter().map(|d| 1.0 + d / 2.0).sum::<f64>()
        + db.iter().map(|d| 1.0 + d / 2.0).sum::<f64>();
    (total / worst.max(1e-9)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skps(points: &[(f64, f64)], edges: &[(u32, u32)]) -> SkPs {
        SkPs {
            points: points.iter().map(|(x, y)| vec![*x, *y].into()).collect(),
            edges: edges.to_vec(),
            population: points.len() as u32,
        }
    }

    #[test]
    fn identical_graphs_have_zero_distance() {
        let g = skps(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)], &[(0, 1), (1, 2)]);
        assert!(graph_edit_distance(&g, &g) < 1e-9);
    }

    #[test]
    fn empty_graph_cases() {
        let g = skps(&[(0.0, 0.0)], &[]);
        let e = skps(&[], &[]);
        assert_eq!(graph_edit_distance(&e, &e), 0.0);
        assert_eq!(graph_edit_distance(&g, &e), 1.0);
        assert_eq!(graph_edit_distance(&e, &g), 1.0);
    }

    #[test]
    fn distance_grows_with_structural_difference() {
        let path = skps(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)], &[(0, 1), (1, 2)]);
        let path_shift = skps(&[(0.1, 0.0), (1.1, 0.0), (2.1, 0.0)], &[(0, 1), (1, 2)]);
        let star = skps(
            &[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (-1.0, 0.0), (0.0, -1.0)],
            &[(0, 1), (0, 2), (0, 3), (0, 4)],
        );
        let near = graph_edit_distance(&path, &path_shift);
        let far = graph_edit_distance(&path, &star);
        assert!(near < far, "near {near} vs far {far}");
    }

    #[test]
    fn symmetric_enough() {
        let a = skps(&[(0.0, 0.0), (1.0, 0.0)], &[(0, 1)]);
        let b = skps(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)], &[(0, 1), (1, 2)]);
        let d1 = graph_edit_distance(&a, &b);
        let d2 = graph_edit_distance(&b, &a);
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn bounded_by_one() {
        let a = skps(&[(0.0, 0.0)], &[]);
        let b = skps(
            &[(100.0, 100.0), (101.0, 100.0), (102.0, 100.0)],
            &[(0, 1), (1, 2)],
        );
        let d = graph_edit_distance(&a, &b);
        assert!((0.0..=1.0).contains(&d));
    }
}
