//! Service-layer resilience tests (`DESIGN.md` §12): typed fail-fast
//! connects, per-owner admission control (query / input-queue /
//! output-buffer quotas), idle-session reaping, the `GoAway` drain
//! protocol with durable-archive checkpointing, the disconnect watcher
//! that unwedges a `Block`-policy feeder, wire-garbage resistance of the
//! live session loop, and the byte-accounting pin between the runtime's
//! quota costing and the wire encoding.

use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use streamsum::archive::{DurableConfig, DurablePatternBase};
use streamsum::client::ClientConfig;
use streamsum::prelude::*;
use streamsum::runtime::DurableArchive;
use streamsum::wire::{read_frame, ErrorCode, WireWindow};

const DETECT: &str = "DETECT DensityBasedClusters f+s FROM gmti \
                      USING theta_range = 0.6 AND theta_cnt = 6 \
                      IN Windows WITH win = 1000 AND slide = 250";

fn gmti(n: usize) -> Vec<Point> {
    generate_gmti(&GmtiConfig {
        n_records: n,
        ..GmtiConfig::default()
    })
}

fn start_server(config: ServerConfig) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || {
        let _ = server.run();
    });
    (addr, handle, join)
}

fn quota_error(result: Result<impl std::fmt::Debug, ClientError>) -> String {
    match result {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::QuotaExceeded, "{message}");
            message
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
}

/// Poll one exact counter over the wire until it reaches `at_least`, or
/// fail after `deadline`.
fn await_counter(addr: SocketAddr, name: &str, at_least: u64, deadline: Duration) -> u64 {
    let end = Instant::now() + deadline;
    loop {
        let mut probe = Session::connect(addr).expect("counter probe connects");
        let value = probe
            .metrics()
            .expect("counter probe")
            .iter()
            .find(|m| m.name == name)
            .map(|m| match m.value {
                WireMetricValue::Counter(v) => v,
                _ => panic!("{name} is not a counter"),
            })
            .unwrap_or(0);
        let _ = probe.goodbye();
        if value >= at_least {
            return value;
        }
        assert!(
            Instant::now() < end,
            "{name} never reached {at_least} (last {value})"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

// ---------------------------------------------------------------------------
// Fail-fast connects
// ---------------------------------------------------------------------------

#[test]
fn connecting_to_a_listener_that_never_answers_times_out() {
    // A bound listener that is never accepted from: the TCP connect
    // succeeds (kernel backlog), but the handshake read must trip the
    // connect deadline instead of hanging forever.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let config = ClientConfig {
        connect_timeout: Some(Duration::from_millis(300)),
        ..ClientConfig::default()
    };
    let started = Instant::now();
    match Session::connect_with(addr, config).map(|_| ()) {
        Err(ClientError::Timeout) => {}
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "connect deadline did not bound the handshake"
    );
}

#[test]
fn accept_then_close_fails_fast_with_a_typed_error() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        // Accept and immediately hang up, twice (the client may probe
        // more than once across address resolution).
        for _ in 0..2 {
            if let Ok((sock, _)) = listener.accept() {
                drop(sock);
            }
        }
    });
    match Session::connect(addr).map(|_| ()) {
        Err(ClientError::Closed) | Err(ClientError::ConnectionLost) => {}
        other => panic!("expected Closed/ConnectionLost, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Per-owner admission control
// ---------------------------------------------------------------------------

#[test]
fn owner_max_queries_caps_live_queries_per_session() {
    let config = ServerConfig {
        owner_max_queries: Some(2),
        ..ServerConfig::default()
    };
    let (addr, handle, _join) = start_server(config);
    let mut client = Session::connect(addr).unwrap();
    let q0 = client.detect(DETECT).unwrap();
    client.detect(DETECT).unwrap();
    let message = quota_error(client.detect(DETECT));
    assert!(message.contains("2 live queries"), "{message}");

    // The quota is per owner: another session still has its full budget.
    let mut other = Session::connect(addr).unwrap();
    other.detect(DETECT).unwrap();
    other.goodbye().unwrap();

    // Cancelling frees a slot.
    client.query(q0).cancel().unwrap();
    client.detect(DETECT).unwrap();
    client.goodbye().unwrap();
    handle.shutdown();
}

#[test]
fn owner_max_queue_bytes_rejects_an_oversized_feed_whole() {
    // gmti is 2-d: the runtime charges 16 + 8*2 = 32 bytes per queued
    // point, so 200 points (6400 bytes) overflow a 4096-byte cap while
    // 100 points (3200 bytes) fit.
    let config = ServerConfig {
        owner_max_queue_bytes: Some(4096),
        ..ServerConfig::default()
    };
    let (addr, handle, _join) = start_server(config);
    let mut client = Session::connect(addr).unwrap();
    let q = client.detect(DETECT).unwrap();

    let message = quota_error(client.feed("gmti", &gmti(200)));
    assert!(message.contains("input-queue limit of 4096"), "{message}");
    // Rejected whole: no partial batch reached the query.
    client.quiesce().unwrap();
    assert_eq!(client.query(q).stats().unwrap().stats.points, 0);

    // An in-budget batch is admitted normally.
    client.feed("gmti", &gmti(100)).unwrap();
    client.quiesce().unwrap();
    assert_eq!(client.query(q).stats().unwrap().stats.points, 100);
    client.goodbye().unwrap();
    handle.shutdown();
}

#[test]
fn owner_max_buffer_bytes_requires_polling_to_feed_again() {
    let config = ServerConfig {
        owner_max_buffer_bytes: Some(64),
        ..ServerConfig::default()
    };
    let (addr, handle, _join) = start_server(config);
    let mut client = Session::connect(addr).unwrap();
    let q = client.detect(DETECT).unwrap();

    // Build up unpolled windows well past the 64-byte cap.
    client.feed("gmti", &gmti(3000)).unwrap();
    client.quiesce().unwrap();
    assert!(client.query(q).stats().unwrap().stats.windows > 0);

    let message = quota_error(client.feed("gmti", &gmti(10)));
    assert!(message.contains("poll to release"), "{message}");

    // Draining the buffer releases the quota.
    let windows = client.query(q).poll(0).unwrap();
    assert!(!windows.is_empty());
    client.feed("gmti", &gmti(10)).unwrap();
    client.goodbye().unwrap();
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Idle timeout
// ---------------------------------------------------------------------------

#[test]
fn idle_sessions_are_closed_with_a_typed_error() {
    let mut config = ServerConfig {
        idle_timeout: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    };
    config.runtime.metrics = true;
    let (addr, handle, _join) = start_server(config);

    let mut client = Session::connect(addr).unwrap();
    client.detect(DETECT).unwrap();
    // Go silent past the idle deadline; the server closes the session
    // with a typed Protocol error naming the timeout.
    std::thread::sleep(Duration::from_millis(700));
    match client.queries() {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::Protocol);
            assert!(message.contains("idle timeout"), "{message}");
        }
        // The farewell frame can lose the race with the socket close.
        Err(ClientError::Closed) | Err(ClientError::ConnectionLost) => {}
        other => panic!("expected an idle-timeout close, got {other:?}"),
    }
    await_counter(
        addr,
        "sgs_server_idle_timeouts_total",
        1,
        Duration::from_secs(10),
    );
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------------

#[test]
fn draining_notifies_idle_sessions_with_goaway_and_completes() {
    let (addr, handle, join) = start_server(ServerConfig::default());
    let mut client = Session::connect(addr).unwrap();
    client.detect(DETECT).unwrap();

    let drainer = {
        let handle = handle.clone();
        std::thread::spawn(move || handle.drain(Duration::from_secs(5)))
    };
    // The session notices the drain flag within one read tick and sends
    // GoAway unprompted; the client surfaces it on its next exchange.
    let end = Instant::now() + Duration::from_secs(5);
    loop {
        match client.queries() {
            Ok(_) => {
                assert!(Instant::now() < end, "server never started draining");
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(ClientError::GoAway { reason, .. }) => {
                assert!(reason.contains("draining"), "{reason}");
                break;
            }
            // GoAway can lose the race with the socket teardown.
            Err(ClientError::Closed) | Err(ClientError::ConnectionLost) => break,
            Err(other) => panic!("expected GoAway, got {other:?}"),
        }
    }
    let forced = drainer.join().unwrap();
    assert_eq!(forced, 0, "an idle session must drain voluntarily");
    // Server::run returns once the drain completes.
    join.join().unwrap();
}

/// Recursive copy, for snapshotting a durable archive directory.
fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let target = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), &target).unwrap();
        }
    }
}

#[test]
fn drain_checkpoints_the_durable_archive_byte_identically() {
    let dir = std::env::temp_dir().join(format!("sgs-drain-archive-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = ServerConfig::default();
    config.runtime.durable_archive = Some(DurableArchive::at(dir.join("live")));
    let (addr, handle, join) = start_server(config);

    let mut client = Session::connect(addr).unwrap();
    let q = client.detect(DETECT).unwrap();
    client.feed("gmti", &gmti(4000)).unwrap();
    client.quiesce().unwrap();
    let archived = client.query(q).stats().unwrap().stats.archived;
    assert!(archived > 0, "workload must archive patterns");
    client.goodbye().unwrap();

    // Oracle: what WAL replay recovers from the pre-drain directory
    // (copied while quiescent, so the files are stable).
    let pre = dir.join("pre-drain");
    copy_dir(&dir.join("live/dim2"), &pre);
    let want = DurablePatternBase::open(&pre, DurableConfig::default())
        .expect("pre-drain recovery")
        .snapshot_bytes();

    let forced = handle.drain(Duration::from_secs(10));
    assert_eq!(forced, 0);
    join.join().unwrap();

    // The drain checkpointed the base; recovery from the checkpointed
    // store must be byte-identical to WAL-replay recovery.
    let post = dir.join("post-drain");
    copy_dir(&dir.join("live/dim2"), &post);
    let recovered =
        DurablePatternBase::open(&post, DurableConfig::default()).expect("post-drain recovery");
    assert_eq!(
        recovered.snapshot_bytes(),
        want,
        "checkpointed recovery diverged from WAL-replay recovery"
    );
    assert_eq!(recovered.len() as u64, archived);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Disconnect reaping of a wedged Block-policy feeder
// ---------------------------------------------------------------------------

#[test]
fn a_session_killed_mid_feed_against_a_full_block_buffer_is_reaped() {
    let mut config = ServerConfig::default();
    config.runtime.metrics = true;
    config.runtime.output_policy = OutputPolicy::Block(1);
    config.runtime.channel_capacity = 2;
    let (addr, handle, join) = start_server(config);

    // A raw protocol session (not the Client, which would insist on
    // reading the Feed ack): handshake, register, then one big Feed the
    // session thread will wedge on — the Block(1) buffer fills, the
    // executor stalls, the bounded input queue fills, and the Feed
    // dispatch blocks with no poll ever coming.
    let mut raw = TcpStream::connect(addr).unwrap();
    write_raw(
        &mut raw,
        &Frame::Hello {
            client: "raw".into(),
            token: None,
        },
    );
    assert!(matches!(
        read_frame(&mut raw).unwrap(),
        Frame::HelloAck { .. }
    ));
    write_raw(
        &mut raw,
        &Frame::Submit {
            text: DETECT.into(),
        },
    );
    assert!(matches!(
        read_frame(&mut raw).unwrap(),
        Frame::Registered { .. }
    ));
    write_raw(
        &mut raw,
        &Frame::Feed {
            stream: "gmti".into(),
            points: gmti(6000),
        },
    );
    // Let the server read the whole frame and wedge in the dispatch.
    std::thread::sleep(Duration::from_millis(1500));

    // Kill the client abruptly, mid-Feed. The disconnect watcher must
    // notice, close the owner's output buffers (unwedging the feeder),
    // and let the session tear down fully — no waiting for a poll.
    let _ = raw.shutdown(Shutdown::Both);
    drop(raw);
    await_counter(
        addr,
        "sgs_server_disconnect_reaps_total",
        1,
        Duration::from_secs(15),
    );

    // The reaped session's teardown must complete: shutdown only
    // returns after every session thread has ended, so a still-wedged
    // session would hang this join.
    handle.shutdown();
    join.join().unwrap();
}

fn write_raw(sock: &mut TcpStream, frame: &Frame) {
    sock.write_all(&frame.encode()).unwrap();
}

// ---------------------------------------------------------------------------
// Wire-garbage resistance of the live session loop
// ---------------------------------------------------------------------------

/// One long-lived server shared by all garbage cases (the property is
/// precisely that it survives them all).
fn garbage_target() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let (addr, _handle, _join) = start_server(ServerConfig::default());
        addr
    })
}

proptest! {
    /// Arbitrary bytes pushed at a live session — before or after a
    /// valid handshake — never wedge the server, never tear a reply
    /// frame, and leave it healthy for the next (well-formed) session.
    #[test]
    fn wire_garbage_never_wedges_or_desyncs_the_server(
        garbage in prop::collection::vec(0u8..255, 1..1500),
        after_hello in 0u8..2,
    ) {
        let addr = garbage_target();
        let mut sock = TcpStream::connect(addr).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        if after_hello == 1 {
            sock.write_all(&Frame::Hello { client: "garbage".into(), token: None }.encode()).unwrap();
            let ack = read_frame(&mut sock).unwrap();
            prop_assert!(matches!(ack, Frame::HelloAck { .. }));
        }
        // Send the garbage, then half-close so the server sees EOF once
        // it has consumed everything it can parse.
        let _ = sock.write_all(&garbage);
        let _ = sock.shutdown(Shutdown::Write);

        // Everything the server says back must be complete, well-formed
        // frames — by far most often a typed Protocol error, possibly
        // replies to bytes that happened to parse, never a torn frame.
        let mut replies = Vec::new();
        loop {
            match read_frame(&mut sock) {
                Ok(frame) => replies.push(frame),
                Err(streamsum::wire::RecvError::Closed) => break,
                Err(e) => panic!("server reply was not clean frames: {e:?}"),
            }
        }
        drop(sock);

        // The server took the garbage in stride: a fresh, well-formed
        // session still works.
        let mut probe = Session::connect(addr).unwrap();
        prop_assert!(probe.queries().unwrap().is_empty());
        probe.goodbye().unwrap();
    }
}

// ---------------------------------------------------------------------------
// Quota costing ↔ wire encoding pin
// ---------------------------------------------------------------------------

#[test]
fn output_buffer_byte_accounting_matches_the_wire_encoding() {
    // The runtime's per-window quota cost (`window_cost`, used by
    // `output_bytes_for`) deliberately mirrors
    // `WireWindow::encoded_len` without a crate dependency; this test
    // pins the two formulas together through the public APIs.
    let mut rt = Runtime::new();
    rt.register_stream("gmti", 2);
    let owner = rt.new_owner();
    let QueryPlan::Detect(plan) = rt.plan(DETECT).unwrap() else {
        panic!("expected a DETECT plan");
    };
    let id = rt.session(owner).submit_detect(*plan).unwrap();
    rt.push_batch(&gmti(3000)).unwrap();
    rt.quiesce().unwrap();

    let accounted = rt.output_bytes_for(owner);
    assert!(accounted > 0, "workload must buffer windows");
    let windows = rt.poll(id).unwrap();
    let encoded: usize = windows
        .iter()
        .map(|(window, clusters)| {
            WireWindow {
                window: *window,
                clusters: clusters.clone(),
            }
            .encoded_len()
        })
        .sum();
    assert_eq!(
        accounted, encoded,
        "runtime window_cost diverged from WireWindow::encoded_len"
    );
    assert_eq!(rt.output_bytes_for(owner), 0, "poll must release the bytes");
}
