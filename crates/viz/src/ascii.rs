//! ASCII rendering of skeletal grid summaries.
//!
//! Each skeletal cell becomes one character at its (projected) cell
//! coordinate: core cells are drawn with a density ramp `.:oO@` (quintiles
//! of the summary's population distribution), edge cells as `+`. Rows are
//! emitted with y increasing upward, like a plot.

use sgs_summarize::{CellStatus, Sgs};

/// Density ramp for core cells, light to heavy.
const RAMP: [char; 5] = ['.', ':', 'o', 'O', '@'];

/// Render a summary to a character raster, projecting onto dimensions
/// `(dx, dy)`. Returns an empty string for an empty summary.
///
/// # Panics
/// Panics if `dx` or `dy` is out of range or equal.
pub fn render_ascii(sgs: &Sgs, dx: usize, dy: usize) -> String {
    assert!(dx != dy, "projection dimensions must differ");
    assert!(dx < sgs.dim && dy < sgs.dim, "projection out of range");
    if sgs.cells.is_empty() {
        return String::new();
    }
    let xs: Vec<i32> = sgs.cells.iter().map(|c| c.coord.0[dx]).collect();
    let ys: Vec<i32> = sgs.cells.iter().map(|c| c.coord.0[dy]).collect();
    let (x0, x1) = (*xs.iter().min().unwrap(), *xs.iter().max().unwrap());
    let (y0, y1) = (*ys.iter().min().unwrap(), *ys.iter().max().unwrap());
    let width = (x1 - x0 + 1) as usize;
    let height = (y1 - y0 + 1) as usize;

    let max_pop = sgs
        .cells
        .iter()
        .filter(|c| c.status == CellStatus::Core)
        .map(|c| c.population)
        .max()
        .unwrap_or(1)
        .max(1);

    let mut raster = vec![vec![' '; width]; height];
    for cell in &sgs.cells {
        let col = (cell.coord.0[dx] - x0) as usize;
        let row = (cell.coord.0[dy] - y0) as usize;
        // When several cells project onto one spot (d > 2), keep the
        // heaviest glyph.
        let glyph = match cell.status {
            CellStatus::Edge => '+',
            CellStatus::Core => {
                let idx = ((cell.population as usize * RAMP.len()) / (max_pop as usize + 1))
                    .min(RAMP.len() - 1);
                RAMP[idx]
            }
        };
        let existing = raster[row][col];
        let rank = |g: char| match g {
            ' ' => 0,
            '+' => 1,
            c => 2 + RAMP.iter().position(|r| *r == c).unwrap_or(0),
        };
        if rank(glyph) > rank(existing) {
            raster[row][col] = glyph;
        }
    }

    // y grows upward: emit top row first.
    let mut out = String::with_capacity((width + 1) * height);
    for row in raster.iter().rev() {
        let line: String = row.iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_core::GridGeometry;
    use sgs_summarize::MemberSet;

    fn strip() -> Sgs {
        let cores: Vec<Box<[f64]>> = (0..12)
            .map(|i| vec![0.05 + i as f64 * 0.3, 0.05].into())
            .collect();
        let edges = vec![Box::from(vec![0.05, 0.9])];
        Sgs::from_members(&MemberSet::new(cores, edges), &GridGeometry::basic(2, 1.0))
    }

    #[test]
    fn renders_cells_as_glyphs() {
        let art = render_ascii(&strip(), 0, 1);
        // One edge cell above the strip → the '+' appears on the top line.
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('+'), "{art}");
        assert!(lines[1].chars().any(|c| RAMP.contains(&c)), "{art}");
    }

    #[test]
    fn empty_summary_is_empty_string() {
        let empty = Sgs {
            dim: 2,
            side: 1.0,
            level: 0,
            cells: vec![],
        };
        assert_eq!(render_ascii(&empty, 0, 1), "");
    }

    #[test]
    fn raster_covers_bounding_box() {
        let art = render_ascii(&strip(), 0, 1);
        let widths: Vec<usize> = art.lines().map(|l| l.len()).collect();
        // Strip spans ~6 cells in x.
        assert!(*widths.iter().max().unwrap() >= 5);
    }

    #[test]
    #[should_panic(expected = "differ")]
    fn rejects_equal_projection_dims() {
        render_ascii(&strip(), 0, 0);
    }

    #[test]
    fn denser_cells_get_heavier_glyphs() {
        // One very dense cell among light ones.
        let mut cores: Vec<Box<[f64]>> = (0..20).map(|_| vec![0.1, 0.1].into()).collect();
        cores.push(vec![1.5, 0.1].into());
        let sgs = Sgs::from_members(&MemberSet::new(cores, vec![]), &GridGeometry::basic(2, 1.0));
        let art = render_ascii(&sgs, 0, 1);
        assert!(art.contains('@'), "{art}");
    }
}
