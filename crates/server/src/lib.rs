//! # sgs-server
//!
//! The TCP network front-end of the streamsum engine (`DESIGN.md` §9):
//! an embeddable [`Server`] that listens on a socket and multiplexes any
//! number of client connections onto **one shared
//! [`Runtime`]** — the step that turns the in-process multi-query engine
//! into a service remote analysts share, per the paper's setting of
//! analysts issuing DETECT/MATCH statements against live streams (§1,
//! Figs. 2–3). The `streamsum-server` binary is a thin CLI around it.
//!
//! ## Session model
//!
//! Each connection is a **session** served by one OS thread (network
//! threads block on sockets; the compute stays on the runtime's
//! `sgs-exec` scheduler pool). A session:
//!
//! * owns its query namespace: ids on the wire are session-local
//!   (`Q0, Q1, ...` per connection), mapped to runtime [`QueryId`]s
//!   through the session's table and tagged with a runtime
//!   [`OwnerId`] — another session cannot name,
//!   list, poll, or cancel them;
//! * feeds only its own queries: `Feed` frames route through
//!   [`Runtime::push_stream_for`], so two sessions replaying the same
//!   stream each see exactly their own data (byte-identical to a solo
//!   run), while both archives still merge into the **shared history**
//!   that matching statements query — the paper's many-analysts /
//!   one-history arrangement;
//! * is throttled end to end: a full bounded per-query `InputQueue`
//!   blocks the session's `Feed` dispatch, which delays its ack, which
//!   stops the client — and an unread socket eventually exerts plain TCP
//!   flow control. Polled windows respect the runtime's configured
//!   `OutputPolicy` (drained via [`Runtime::poll_batch`], which frees
//!   output-buffer capacity window by window).
//!
//! On disconnect (clean `Goodbye` or a dropped socket) the session's
//! live queries are cancelled, so abandoned clients do not leak pipeline
//! state — their archived history remains, by design.

pub mod metrics;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use sgs_core::Point;
use sgs_runtime::{
    OwnerId, QueryDescriptor, QueryId, QueryState, QueryStats, Runtime, RuntimeConfig, RuntimeError,
};
use sgs_wire::{
    read_frame, write_frame, ErrorCode, Frame, RecvError, WireMetric, WireMetricValue, WireQuery,
    WireQueryState, WireStats, WireWindow, WIRE_VERSION,
};

pub use metrics::spawn_metrics_listener;
use metrics::{CountingStream, ServerMetrics};

/// Construction-time settings of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Configuration of the shared [`Runtime`] all sessions multiplex
    /// onto. Note that [`RuntimeConfig::output_policy`] governs every
    /// session's poll buffers; `Block` requires clients to interleave
    /// polls with feeds (see `DESIGN.md` §9) — prefer `DropOldest` for
    /// slow remote consumers.
    pub runtime: RuntimeConfig,
    /// Source streams to register (name, dimensionality). Defaults to
    /// the two generator streams: `gmti` (2-d) and `stt` (4-d).
    pub streams: Vec<(String, usize)>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            runtime: RuntimeConfig::default(),
            streams: vec![("gmti".into(), 2), ("stt".into(), 4)],
        }
    }
}

/// Byte budget of one `Windows` response page (8 MiB — an 8× margin
/// under [`sgs_wire::MAX_FRAME_LEN`]): a `Poll` stops collecting once
/// the accumulated window payload crosses it, leaving the rest buffered
/// for the client's next page request.
const POLL_PAGE_BYTES: usize = 8 << 20;

/// State shared by the accept loop and every session thread.
struct Shared {
    rt: RwLock<Runtime>,
    shutting_down: AtomicBool,
    metrics: ServerMetrics,
}

/// The listening server. Construct with [`Server::bind`], then either
/// [`run`](Server::run) on the current thread or hand it to a spawned
/// one (tests drive an in-process server exactly that way).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Clonable controller for a running [`Server`] (shutdown from another
/// thread).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Stop accepting connections and make [`Server::run`] return once
    /// the sessions alive at this moment have ended. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection. An
        // unspecified bind address (0.0.0.0 / ::) is not connectable —
        // rewrite it to the matching loopback, same port.
        let mut addr = self.addr;
        if addr.ip().is_unspecified() {
            match &mut addr {
                SocketAddr::V4(v4) => v4.set_ip(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(v6) => v6.set_ip(std::net::Ipv6Addr::LOCALHOST),
            }
        }
        let _ = TcpStream::connect(addr);
    }
}

impl Server {
    /// Bind the listening socket and build the shared runtime. Use port
    /// 0 to let the OS pick (read it back with
    /// [`local_addr`](Self::local_addr)).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let mut rt = Runtime::with_config(config.runtime);
        for (name, dim) in &config.streams {
            rt.register_stream(name, *dim);
        }
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                rt: RwLock::new(rt),
                shutting_down: AtomicBool::new(false),
                metrics: ServerMetrics::new(),
            }),
        })
    }

    /// The bound address (the real port when bound to port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A controller usable from other threads.
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle {
            shared: self.shared.clone(),
            addr: self.local_addr()?,
        })
    }

    /// Accept and serve connections until [`ServerHandle::shutdown`].
    /// Each connection gets one session thread; the call returns after
    /// the accept loop stops and every session thread has ended.
    pub fn run(self) -> io::Result<()> {
        let mut sessions = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => return Err(e),
            };
            let shared = self.shared.clone();
            sessions.push(std::thread::spawn(move || serve_session(&shared, stream)));
            // Reap finished sessions so a long-lived server does not
            // accumulate one parked JoinHandle per past connection.
            sessions.retain(|h| !h.is_finished());
        }
        for session in sessions {
            let _ = session.join();
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

/// One session's table of queries: index = session-local id.
struct Session {
    owner: OwnerId,
    queries: Vec<QueryId>,
}

impl Session {
    fn resolve(&self, local: u64) -> Result<QueryId, Frame> {
        self.queries
            .get(local as usize)
            .copied()
            .ok_or_else(|| error_frame(ErrorCode::UnknownQuery, format!("no query Q{local}")))
    }
}

/// Serve one connection to completion. Any protocol violation ends the
/// session; any transport error ends it silently (the peer is gone).
fn serve_session(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    shared.metrics.sessions_total.inc();
    shared.metrics.sessions.inc();
    serve_session_inner(shared, CountingStream::new(stream, &shared.metrics));
    shared.metrics.sessions.dec();
}

fn serve_session_inner(shared: &Shared, mut stream: CountingStream) {
    // Handshake: the first frame must be Hello.
    match read_frame(&mut stream) {
        Ok(Frame::Hello { .. }) => {
            let ack = Frame::HelloAck {
                server: concat!("streamsum-server/", env!("CARGO_PKG_VERSION")).into(),
                protocol: WIRE_VERSION,
            };
            if write_frame(&mut stream, &ack).is_err() {
                return;
            }
        }
        Ok(_) => {
            let _ = write_frame(
                &mut stream,
                &error_frame(ErrorCode::Protocol, "expected Hello".into()),
            );
            return;
        }
        // A malformed first frame — most importantly a WIRE_VERSION
        // mismatch — gets an explanatory Error frame, not a silent
        // close, so mixed-version deployments fail loudly (§9's rule).
        Err(RecvError::Wire(e)) => {
            let _ = write_frame(
                &mut stream,
                &error_frame(ErrorCode::Protocol, e.to_string()),
            );
            return;
        }
        Err(_) => return,
    }

    let mut session = Session {
        owner: shared.rt.write().new_owner(),
        queries: Vec::new(),
    };

    loop {
        let frame = match read_frame(&mut stream) {
            Ok(frame) => frame,
            // Clean close, peer vanished, or garbage: session over
            // either way. A wire error gets a best-effort explanation.
            Err(RecvError::Wire(e)) => {
                let _ = write_frame(
                    &mut stream,
                    &error_frame(ErrorCode::Protocol, e.to_string()),
                );
                break;
            }
            Err(_) => break,
        };
        let goodbye = matches!(frame, Frame::Goodbye);
        let reply = dispatch(shared, &mut session, frame);
        let fatal = matches!(
            reply,
            Frame::Error {
                code: ErrorCode::Protocol,
                ..
            }
        );
        if write_frame(&mut stream, &reply).is_err() || goodbye || fatal {
            break;
        }
    }

    // Teardown: cancel the session's live queries so a vanished analyst
    // does not leak running pipelines. Archived history stays. Begin
    // every cancel under one short write-lock hold, then wait for the
    // drains with the lock released — a big backlog must not stall the
    // other sessions (and beginning all stops before waiting on any is
    // the same no-deadlock order as Runtime::shutdown).
    let pending: Vec<_> = {
        let mut rt = shared.rt.write();
        rt.queries_for(session.owner)
            .into_iter()
            .filter(|d| d.state != QueryState::Cancelled)
            .filter_map(|d| rt.cancel_begin(d.id).ok())
            .collect()
    };
    for cancel in pending {
        let _ = cancel.wait();
    }
    // Evict the dead entries (and their undrained output buffers): a
    // server living through thousands of connect/feed/disconnect cycles
    // must not accumulate registry garbage per past session.
    shared.rt.write().evict_cancelled(session.owner);
}

/// Execute one request frame against the shared runtime.
fn dispatch(shared: &Shared, session: &mut Session, frame: Frame) -> Frame {
    shared.metrics.count_frame(frame.kind());
    match frame {
        Frame::Hello { .. } => error_frame(ErrorCode::Protocol, "duplicate Hello".into()),
        Frame::Submit { text } => {
            // Plan first under the read lock; only a DETECT registration
            // needs the exclusive write lock. Matching statements run
            // entirely under the read side, so one analyst's (possibly
            // long) history scan never stalls other sessions.
            let planned = shared.rt.read().plan(&text);
            match planned {
                Ok(sgs_runtime::QueryPlan::Detect(plan)) => {
                    match shared.rt.write().submit_detect_for(session.owner, *plan) {
                        Ok(id) => {
                            session.queries.push(id);
                            Frame::Registered {
                                query: (session.queries.len() - 1) as u64,
                            }
                        }
                        Err(e) => runtime_error_frame(&e),
                    }
                }
                Ok(sgs_runtime::QueryPlan::Match(plan)) => {
                    match shared.rt.read().run_match(&plan) {
                        Ok(outcome) => Frame::Matches {
                            candidates: outcome.candidates as u64,
                            refined: outcome.refined as u64,
                            matches: outcome
                                .matches
                                .iter()
                                .map(|m| sgs_wire::WireMatch {
                                    pattern: m.id.0,
                                    distance: m.distance,
                                })
                                .collect(),
                        },
                        Err(e) => runtime_error_frame(&e),
                    }
                }
                Err(e) => runtime_error_frame(&e),
            }
        }
        Frame::Feed { stream, points } => feed(shared, session, &stream, &points),
        Frame::Poll { query, max } => {
            let local = query;
            match session.resolve(local) {
                Ok(id) => {
                    let rt = shared.rt.read();
                    match rt.poll_batch(id, max as usize) {
                        Ok(mut batch) => {
                            // Page by encoded size: a window that would
                            // push the page past the budget goes back
                            // into the buffer for the client's next page
                            // request, so a response only ever exceeds
                            // POLL_PAGE_BYTES when a *single* window
                            // does — and one beyond the protocol's frame
                            // cap is refused as a typed error rather
                            // than shipped as an undecodable frame.
                            let mut windows = Vec::new();
                            let mut bytes = 0usize;
                            while let Some((window, clusters)) = batch.next() {
                                let w = WireWindow { window, clusters };
                                let cost = w.encoded_len();
                                if cost > sgs_wire::MAX_FRAME_LEN - 1024 {
                                    batch.put_back(w.window, w.clusters);
                                    if windows.is_empty() {
                                        return error_frame(
                                            ErrorCode::Internal,
                                            format!(
                                                "window {} encodes to {cost} bytes, beyond \
                                                 the frame cap — cancel the query to discard it",
                                                w.window.0
                                            ),
                                        );
                                    }
                                    break;
                                }
                                if !windows.is_empty() && bytes + cost > POLL_PAGE_BYTES {
                                    batch.put_back(w.window, w.clusters);
                                    break;
                                }
                                bytes += cost;
                                windows.push(w);
                                if bytes >= POLL_PAGE_BYTES {
                                    break;
                                }
                            }
                            Frame::Windows {
                                query: local,
                                windows,
                            }
                        }
                        Err(e) => runtime_error_frame(&e),
                    }
                }
                Err(e) => e,
            }
        }
        Frame::StatsReq { query } => match session.resolve(query) {
            Ok(id) => {
                let rt = shared.rt.read();
                match (rt.state(id), rt.stats(id), rt.text_of(id)) {
                    (Ok(state), Ok(stats), Ok(text)) => Frame::StatsReply(WireQuery {
                        query,
                        state: wire_state(state),
                        text: text.to_string(),
                        stats: wire_stats(&stats),
                    }),
                    (Err(e), ..) | (_, Err(e), _) | (.., Err(e)) => runtime_error_frame(&e),
                }
            }
            Err(e) => e,
        },
        Frame::ListQueries => {
            let rt = shared.rt.read();
            let descriptors = rt.queries_for(session.owner);
            Frame::Queries(
                session
                    .queries
                    .iter()
                    .enumerate()
                    .filter_map(|(local, id)| {
                        descriptors
                            .iter()
                            .find(|d| d.id == *id)
                            .map(|d| describe(local as u64, d))
                    })
                    .collect(),
            )
        }
        Frame::Pause { query } => lifecycle(shared, session, query, |rt, id| rt.pause(id)),
        Frame::Resume { query } => lifecycle(shared, session, query, |rt, id| rt.resume(id)),
        Frame::Cancel { query } => match session.resolve(query) {
            // Queue the stop under the write lock, but wait for the
            // backlog drain with the lock released — a cancel of a
            // deeply-queued query must not stall other sessions. The
            // begun cancel is bound first so the guard (a temporary in
            // the expression) is dropped before `wait()` blocks.
            Ok(id) => {
                let begun = shared.rt.write().cancel_begin(id);
                match begun.and_then(|pending| pending.wait()) {
                    Ok(report) => Frame::Report {
                        query,
                        stats: wire_stats(&report.stats),
                    },
                    Err(e) => runtime_error_frame(&e),
                }
            }
            Err(e) => e,
        },
        Frame::Bind { name, sgs } => {
            // The wire decoder checks structure only; enforce the full
            // Sgs invariants before the summary enters the shared
            // binding namespace every session's matching reads.
            if let Err(e) = sgs.validate() {
                return error_frame(ErrorCode::Plan, format!("invalid cluster summary: {e}"));
            }
            shared.rt.write().bind_cluster(&name, sgs);
            Frame::OkAck
        }
        Frame::Quiesce => {
            // Barrier over this session's queries only (its feeds target
            // nothing else). Snapshot under the lock, wait without it —
            // the barrier can take as long as the queued work.
            let feeder = shared.rt.read().feeder(Some(session.owner), None);
            feeder.quiesce();
            Frame::OkAck
        }
        Frame::Goodbye => Frame::OkAck,
        Frame::MetricsReq => Frame::MetricsReply(
            sgs_obs::registry()
                .snapshot()
                .into_iter()
                .map(|m| WireMetric {
                    name: m.name,
                    value: match m.value {
                        sgs_obs::MetricValue::Counter(v) => WireMetricValue::Counter(v),
                        sgs_obs::MetricValue::Gauge(v) => WireMetricValue::Gauge(v),
                        sgs_obs::MetricValue::Histogram(h) => WireMetricValue::Histogram {
                            count: h.count,
                            sum: h.sum,
                            max: h.max,
                            p50: h.p50,
                            p95: h.p95,
                            p99: h.p99,
                        },
                    },
                })
                .collect(),
        ),
        // Response kinds are not requests.
        other => error_frame(
            ErrorCode::Protocol,
            format!("frame kind {:#04x} is not a request", other.kind()),
        ),
    }
}

/// `Feed` dispatch: validate against the catalog, then route through the
/// bounded input queues of this session's queries (blocking = the
/// backpressure path; the ack is withheld until the batch is queued).
///
/// The runtime lock is held only for validation and the
/// [`Runtime::feeder`] snapshot, **not** across the potentially long
/// backpressure block — otherwise one stalled session would wedge every
/// write operation (submits, teardowns, even new sessions' handshakes)
/// server-wide.
fn feed(shared: &Shared, session: &Session, stream: &str, points: &[Point]) -> Frame {
    let feeder = {
        let rt = shared.rt.read();
        let Some(dim) = rt.planner().catalog().dim_of(stream) else {
            return error_frame(
                ErrorCode::UnknownStream,
                format!("stream {stream:?} is not in the catalog"),
            );
        };
        if let Some(bad) = points.iter().find(|p| p.dim() != dim) {
            return error_frame(
                ErrorCode::Dimension,
                format!(
                    "stream {stream:?} is {dim}-dimensional, got a {}-dimensional point",
                    bad.dim()
                ),
            );
        }
        rt.feeder(Some(session.owner), Some(stream))
    };
    {
        let _block = sgs_obs::SpanGuard::new(&shared.metrics.feed_block_nanos);
        feeder.push_batch(points);
    }
    Frame::OkAck
}

fn lifecycle(
    shared: &Shared,
    session: &Session,
    local: u64,
    op: impl FnOnce(&mut Runtime, QueryId) -> Result<(), RuntimeError>,
) -> Frame {
    match session.resolve(local) {
        Ok(id) => match op(&mut shared.rt.write(), id) {
            Ok(()) => Frame::OkAck,
            Err(e) => runtime_error_frame(&e),
        },
        Err(e) => e,
    }
}

// ---------------------------------------------------------------------------
// Runtime → wire mappings
// ---------------------------------------------------------------------------

fn wire_state(state: QueryState) -> WireQueryState {
    match state {
        QueryState::Running => WireQueryState::Running,
        QueryState::Paused => WireQueryState::Paused,
        QueryState::Cancelled => WireQueryState::Cancelled,
        QueryState::Failed => WireQueryState::Failed,
    }
}

fn wire_stats(stats: &QueryStats) -> WireStats {
    WireStats {
        points: stats.points,
        windows: stats.windows,
        clusters: stats.clusters,
        windows_dropped: stats.windows_dropped,
        archived: stats.archived,
        archive_bytes: stats.archive_bytes as u64,
        busy_nanos: stats.busy_nanos,
        error: stats.error.clone(),
    }
}

fn describe(local: u64, descriptor: &QueryDescriptor) -> WireQuery {
    WireQuery {
        query: local,
        state: wire_state(descriptor.state),
        text: descriptor.text.clone(),
        stats: wire_stats(&descriptor.stats),
    }
}

fn error_frame(code: ErrorCode, message: String) -> Frame {
    Frame::Error { code, message }
}

fn runtime_error_frame(e: &RuntimeError) -> Frame {
    let code = match e {
        RuntimeError::Plan(_) | RuntimeError::Query(_) => ErrorCode::Plan,
        RuntimeError::UnknownQuery(_) => ErrorCode::UnknownQuery,
        RuntimeError::UnknownBinding(_) => ErrorCode::UnknownBinding,
        RuntimeError::InvalidTransition { .. } | RuntimeError::Disconnected(_) => {
            ErrorCode::InvalidTransition
        }
        RuntimeError::Archive(_) => ErrorCode::Internal,
    };
    error_frame(code, e.to_string())
}
