//! The determinism contract of sharded extraction (`DESIGN.md` §6):
//! for arbitrary random streams, window geometries, and batch sizes, the
//! per-window [`WindowOutput`] of C-SGS is **byte-identical** for every
//! shard count, and each object costs exactly one range-query search
//! regardless of sharding.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use sgs_core::{ClusterQuery, Point, ShardCount, WindowId, WindowSpec};
use sgs_csgs::{CSgs, WindowOutput};
use sgs_stream::WindowEngine;

fn random_stream(seed: u64, n: usize, extent: f64) -> Vec<Point> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new(
                vec![rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)],
                0,
            )
        })
        .collect()
}

/// Run the stream through a fresh extractor with `shards`, pushing
/// `chunk`-sized batches, returning all windows plus the extractor.
fn run_full(
    pts: &[Point],
    spec: WindowSpec,
    theta_r: f64,
    theta_c: u32,
    shards: ShardCount,
    chunk: usize,
) -> (Vec<(WindowId, WindowOutput)>, CSgs) {
    let query = ClusterQuery::new(theta_r, theta_c, 2, spec)
        .unwrap()
        .with_shards(shards);
    let mut csgs = CSgs::new(query);
    let mut engine = WindowEngine::new(spec, 2);
    let mut outs = Vec::new();
    for c in pts.chunks(chunk) {
        engine
            .push_batch(c.iter().cloned(), &mut csgs, &mut outs)
            .unwrap();
    }
    (outs, csgs)
}

/// Like [`run_full`] but returning only the windows plus the RQS count.
fn run(
    pts: &[Point],
    spec: WindowSpec,
    theta_r: f64,
    theta_c: u32,
    shards: ShardCount,
    chunk: usize,
) -> (Vec<(WindowId, WindowOutput)>, u64) {
    let (outs, csgs) = run_full(pts, spec, theta_r, theta_c, shards, chunk);
    (outs, csgs.rqs_count)
}

/// `ShardCount::Auto` (adaptive re-sharding at window boundaries) must
/// sit under the same contract as any fixed count: byte-identical
/// windows, one RQS per object — while actually changing the shard count
/// mid-stream on a workload big enough to trigger adaptation.
#[test]
fn adaptive_shards_are_byte_identical_to_every_fixed_count() {
    let spec = WindowSpec::count(1200, 300).unwrap();
    let (theta_r, theta_c, chunk) = (0.25f64, 3u32, 64usize);
    let pts = random_stream(4242, 2600, 3.0);
    let (auto_out, auto_csgs) = run_full(&pts, spec, theta_r, theta_c, ShardCount::Auto, chunk);
    assert!(
        auto_csgs.shard_count() > 1,
        "workload must be big enough that the adaptive policy actually \
         re-sharded (still at S = {})",
        auto_csgs.shard_count()
    );
    assert_eq!(auto_csgs.rqs_count, pts.len() as u64, "one RQS per object");
    assert!(
        auto_out.iter().any(|(_, o)| !o.is_empty()),
        "workload must produce clusters"
    );
    for s in [1u32, 2, 4] {
        let (out, rqs) = run(&pts, spec, theta_r, theta_c, ShardCount::Fixed(s), chunk);
        assert_eq!(rqs, pts.len() as u64);
        assert_eq!(auto_out, out, "adaptive output diverged from S = {s}");
    }
}

proptest! {
    /// `WindowOutput` with `S = 1` equals `S ∈ {2, 4}` byte-for-byte, and
    /// `rqs_count` stays exactly one per object for every shard count.
    #[test]
    fn window_output_is_shard_invariant(
        seed in 0u64..10_000,
        n in 150usize..400,
        extent in 0.8f64..3.0,
        theta_r in 0.15f64..0.45,
        theta_c in 2u32..5,
        slide_sel in 0usize..3,
        chunk in 16usize..160,
    ) {
        let slide = [10u64, 20, 40][slide_sel];
        let spec = WindowSpec::count(4 * slide, slide).unwrap();
        let pts = random_stream(seed, n, extent);
        let (base, base_rqs) = run(&pts, spec, theta_r, theta_c, ShardCount::Fixed(1), chunk);
        prop_assert_eq!(base_rqs, n as u64, "one RQS per object at S = 1");
        for s in [2u32, 4] {
            let (out, rqs) = run(&pts, spec, theta_r, theta_c, ShardCount::Fixed(s), chunk);
            prop_assert_eq!(rqs, n as u64, "one RQS per object at S = {}", s);
            prop_assert_eq!(&base, &out, "WindowOutput diverged at S = {}", s);
        }
    }
}
