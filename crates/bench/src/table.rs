//! Minimal aligned-column table printer for the harness binaries.

/// Print a titled table with aligned columns.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:<w$}  ",
                cell,
                w = widths.get(i).copied().unwrap_or(0)
            ));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Format bytes human-readably (KiB/MiB with two decimals).
pub fn fmt_bytes(bytes: usize) -> String {
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KB * KB {
        format!("{:.2}M", b / (KB * KB))
    } else if b >= KB {
        format!("{:.1}K", b / KB)
    } else {
        format!("{bytes}B")
    }
}

/// Format milliseconds with adaptive precision.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 1000.0 {
        format!("{:.2}s", ms / 1000.0)
    } else if ms >= 1.0 {
        format!("{ms:.1}ms")
    } else {
        format!("{:.0}µs", ms * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0K");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00M");
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(fmt_ms(0.5), "500µs");
        assert_eq!(fmt_ms(12.34), "12.3ms");
        assert_eq!(fmt_ms(2500.0), "2.50s");
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
