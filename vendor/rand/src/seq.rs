//! Sequence helpers — the shim's analogue of `rand::seq`.

use crate::RngCore;

/// In-place random reordering of slices.
pub trait SliceRandom {
    /// Shuffle the slice uniformly (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            // Modulo draw; bias is negligible for in-workspace slice sizes.
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}
