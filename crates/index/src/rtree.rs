//! An R-tree over minimum bounding rectangles — the *locational feature
//! index* of the pattern base (§7.1).
//!
//! Position-sensitive cluster matching first asks "which archived clusters
//! overlap the query cluster's MBR?"; this index answers that in
//! logarithmic time. Implementation: Guttman's original R-tree with
//! quadratic split (`M = 8`, `m = 3`), supporting insertion and overlap
//! search. Archived patterns are append-only, so deletion is not required,
//! but the tree supports it for completeness of the substrate.

use sgs_core::HeapSize;

/// Axis-aligned rectangle in `d` dimensions.
#[derive(Clone, Debug, PartialEq)]
pub struct Rect {
    /// Minimum corner.
    pub min: Box<[f64]>,
    /// Maximum corner (inclusive).
    pub max: Box<[f64]>,
}

impl Rect {
    /// Build from corners.
    ///
    /// # Panics
    /// Panics if the corners disagree in dimensionality or are inverted.
    pub fn new(min: impl Into<Box<[f64]>>, max: impl Into<Box<[f64]>>) -> Self {
        let (min, max) = (min.into(), max.into());
        assert_eq!(min.len(), max.len(), "corner dimensionality mismatch");
        assert!(
            min.iter().zip(max.iter()).all(|(a, b)| a <= b),
            "inverted rectangle"
        );
        Rect { min, max }
    }

    /// A degenerate rectangle covering a single point.
    pub fn point(coords: &[f64]) -> Self {
        Rect {
            min: coords.into(),
            max: coords.into(),
        }
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// Whether two rectangles overlap (closed intervals).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.iter().zip(other.max.iter()).all(|(a, b)| a <= b)
            && other.min.iter().zip(self.max.iter()).all(|(a, b)| a <= b)
    }

    /// Whether `self` fully contains `other`.
    pub fn contains(&self, other: &Rect) -> bool {
        self.min.iter().zip(other.min.iter()).all(|(a, b)| a <= b)
            && self.max.iter().zip(other.max.iter()).all(|(a, b)| a >= b)
    }

    /// Volume (product of extents).
    pub fn volume(&self) -> f64 {
        self.min
            .iter()
            .zip(self.max.iter())
            .map(|(a, b)| b - a)
            .product()
    }

    /// Smallest rectangle covering both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: self
                .min
                .iter()
                .zip(other.min.iter())
                .map(|(a, b)| a.min(*b))
                .collect(),
            max: self
                .max
                .iter()
                .zip(other.max.iter())
                .map(|(a, b)| a.max(*b))
                .collect(),
        }
    }

    /// Volume increase needed to cover `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).volume() - self.volume()
    }

    /// Center point.
    pub fn center(&self) -> Vec<f64> {
        self.min
            .iter()
            .zip(self.max.iter())
            .map(|(a, b)| (a + b) / 2.0)
            .collect()
    }
}

impl HeapSize for Rect {
    fn heap_size(&self) -> usize {
        (self.min.len() + self.max.len()) * core::mem::size_of::<f64>()
    }
}

const MAX_ENTRIES: usize = 8;
const MIN_ENTRIES: usize = 3;

#[derive(Clone, Debug)]
enum Node<T> {
    Leaf(Vec<(Rect, T)>),
    Inner(Vec<(Rect, Box<Node<T>>)>),
}

/// R-tree mapping rectangles to payloads of type `T`.
#[derive(Clone, Debug)]
pub struct RTree<T> {
    root: Node<T>,
    len: usize,
    dim: usize,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        RTree {
            root: Node::Leaf(Vec::new()),
            len: 0,
            dim: 0,
        }
    }
}

impl<T> RTree<T> {
    /// Empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `value` with bounding rectangle `rect`.
    ///
    /// # Panics
    /// Panics if `rect`'s dimensionality differs from previous insertions.
    pub fn insert(&mut self, rect: Rect, value: T) {
        if self.len == 0 {
            self.dim = rect.dim();
        } else {
            assert_eq!(rect.dim(), self.dim, "dimensionality mismatch");
        }
        self.len += 1;
        if let Some((r1, n1, r2, n2)) = Self::insert_rec(&mut self.root, rect, value) {
            // Root split: grow the tree by one level.
            self.root = Node::Inner(vec![(r1, Box::new(n1)), (r2, Box::new(n2))]);
        }
    }

    /// Recursive insertion; returns the two halves if the node split.
    fn insert_rec(
        node: &mut Node<T>,
        rect: Rect,
        value: T,
    ) -> Option<(Rect, Node<T>, Rect, Node<T>)> {
        match node {
            Node::Leaf(entries) => {
                entries.push((rect, value));
                if entries.len() > MAX_ENTRIES {
                    let (g1, g2) = quadratic_split(std::mem::take(entries));
                    let r1 = mbr_of(&g1);
                    let r2 = mbr_of(&g2);
                    Some((r1, Node::Leaf(g1), r2, Node::Leaf(g2)))
                } else {
                    None
                }
            }
            Node::Inner(children) => {
                // Choose subtree needing least enlargement (ties: smaller volume).
                let mut best = 0usize;
                let mut best_enl = f64::INFINITY;
                let mut best_vol = f64::INFINITY;
                for (i, (r, _)) in children.iter().enumerate() {
                    let enl = r.enlargement(&rect);
                    let vol = r.volume();
                    if enl < best_enl || (enl == best_enl && vol < best_vol) {
                        best = i;
                        best_enl = enl;
                        best_vol = vol;
                    }
                }
                let (child_rect, child) = &mut children[best];
                *child_rect = child_rect.union(&rect);
                if let Some((r1, n1, r2, n2)) = Self::insert_rec(child, rect, value) {
                    children[best] = (r1, Box::new(n1));
                    children.push((r2, Box::new(n2)));
                    if children.len() > MAX_ENTRIES {
                        let (g1, g2) = quadratic_split(std::mem::take(children));
                        let r1 = mbr_of(&g1);
                        let r2 = mbr_of(&g2);
                        return Some((r1, Node::Inner(g1), r2, Node::Inner(g2)));
                    }
                }
                None
            }
        }
    }

    /// Collect every payload whose rectangle intersects `query`.
    pub fn search<'a>(&'a self, query: &Rect, out: &mut Vec<&'a T>) {
        Self::search_rec(&self.root, query, out);
    }

    fn search_rec<'a>(node: &'a Node<T>, query: &Rect, out: &mut Vec<&'a T>) {
        match node {
            Node::Leaf(entries) => {
                for (r, v) in entries {
                    if r.intersects(query) {
                        out.push(v);
                    }
                }
            }
            Node::Inner(children) => {
                for (r, c) in children {
                    if r.intersects(query) {
                        Self::search_rec(c, query, out);
                    }
                }
            }
        }
    }

    /// Visit every `(rect, payload)` pair (diagnostics / rebuilds).
    pub fn for_each<'a>(&'a self, mut f: impl FnMut(&'a Rect, &'a T)) {
        fn walk<'a, T>(node: &'a Node<T>, f: &mut impl FnMut(&'a Rect, &'a T)) {
            match node {
                Node::Leaf(entries) => {
                    for (r, v) in entries {
                        f(r, v);
                    }
                }
                Node::Inner(children) => {
                    for (_, c) in children {
                        walk(c, f);
                    }
                }
            }
        }
        walk(&self.root, &mut f);
    }

    /// Height of the tree (leaf = 1).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Inner(children) = node {
            h += 1;
            node = &children[0].1;
        }
        h
    }

    /// Approximate retained heap bytes.
    pub fn heap_bytes(&self) -> usize {
        fn walk<T>(node: &Node<T>) -> usize {
            match node {
                Node::Leaf(entries) => {
                    entries.capacity() * core::mem::size_of::<(Rect, T)>()
                        + entries.iter().map(|(r, _)| r.heap_size()).sum::<usize>()
                }
                Node::Inner(children) => {
                    children.capacity() * core::mem::size_of::<(Rect, Box<Node<T>>)>()
                        + children
                            .iter()
                            .map(|(r, c)| r.heap_size() + core::mem::size_of::<Node<T>>() + walk(c))
                            .sum::<usize>()
                }
            }
        }
        walk(&self.root)
    }
}

/// MBR of a group of entries.
fn mbr_of<E>(entries: &[(Rect, E)]) -> Rect {
    let mut it = entries.iter();
    let first = it.next().expect("non-empty group").0.clone();
    it.fold(first, |acc, (r, _)| acc.union(r))
}

/// One side of a node split: entries with their bounding rectangles.
type Group<E> = Vec<(Rect, E)>;

/// Guttman's quadratic split: pick the pair wasting the most area as seeds,
/// then greedily assign remaining entries to the group whose MBR grows
/// least, honoring the minimum fill `m`.
fn quadratic_split<E>(mut entries: Vec<(Rect, E)>) -> (Group<E>, Group<E>) {
    debug_assert!(entries.len() > MAX_ENTRIES);
    // Seed selection.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let d = entries[i].0.union(&entries[j].0).volume()
                - entries[i].0.volume()
                - entries[j].0.volume();
            if d > worst {
                worst = d;
                s1 = i;
                s2 = j;
            }
        }
    }
    // Remove higher index first to keep the lower valid.
    let e2 = entries.swap_remove(s2.max(s1));
    let e1 = entries.swap_remove(s2.min(s1));
    let mut r1 = e1.0.clone();
    let mut r2 = e2.0.clone();
    let mut g1 = vec![e1];
    let mut g2 = vec![e2];
    while let Some(e) = entries.pop() {
        let remaining = entries.len();
        // Force assignment if a group must take everything left to reach m.
        if g1.len() + remaining < MIN_ENTRIES {
            r1 = r1.union(&e.0);
            g1.push(e);
            continue;
        }
        if g2.len() + remaining < MIN_ENTRIES {
            r2 = r2.union(&e.0);
            g2.push(e);
            continue;
        }
        let enl1 = r1.enlargement(&e.0);
        let enl2 = r2.enlargement(&e.0);
        if enl1 < enl2 || (enl1 == enl2 && r1.volume() <= r2.volume()) {
            r1 = r1.union(&e.0);
            g1.push(e);
        } else {
            r2 = r2.union(&e.0);
            g2.push(e);
        }
    }
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sq(x: f64, y: f64, s: f64) -> Rect {
        Rect::new(vec![x, y], vec![x + s, y + s])
    }

    #[test]
    fn rect_predicates() {
        let a = sq(0.0, 0.0, 2.0);
        let b = sq(1.0, 1.0, 2.0);
        let c = sq(5.0, 5.0, 1.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(a.contains(&sq(0.5, 0.5, 1.0)));
        assert!(!a.contains(&b));
        // touching edges count as intersecting (closed intervals)
        assert!(a.intersects(&sq(2.0, 0.0, 1.0)));
    }

    #[test]
    fn rect_union_and_volume() {
        let a = sq(0.0, 0.0, 1.0);
        let b = sq(2.0, 2.0, 1.0);
        let u = a.union(&b);
        assert_eq!(u, Rect::new(vec![0.0, 0.0], vec![3.0, 3.0]));
        assert_eq!(u.volume(), 9.0);
        assert_eq!(a.enlargement(&b), 8.0);
        assert_eq!(a.center(), vec![0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn rect_rejects_inverted() {
        Rect::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn search_small_tree() {
        let mut t = RTree::new();
        t.insert(sq(0.0, 0.0, 1.0), 'a');
        t.insert(sq(10.0, 10.0, 1.0), 'b');
        let mut out = Vec::new();
        t.search(&sq(0.5, 0.5, 1.0), &mut out);
        assert_eq!(out, vec![&'a']);
    }

    #[test]
    fn search_matches_linear_scan_after_splits() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut t = RTree::new();
        let mut all = Vec::new();
        for i in 0..500u32 {
            let r = sq(
                rng.gen_range(0.0..100.0),
                rng.gen_range(0.0..100.0),
                rng.gen_range(0.1..5.0),
            );
            t.insert(r.clone(), i);
            all.push((r, i));
        }
        assert_eq!(t.len(), 500);
        assert!(t.height() > 1, "tree should have split");
        for _ in 0..50 {
            let q = sq(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0), 8.0);
            let mut fast: Vec<u32> = Vec::new();
            let mut out = Vec::new();
            t.search(&q, &mut out);
            fast.extend(out.iter().copied());
            fast.sort();
            let mut slow: Vec<u32> = all
                .iter()
                .filter(|(r, _)| r.intersects(&q))
                .map(|(_, i)| *i)
                .collect();
            slow.sort();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn for_each_visits_everything() {
        let mut t = RTree::new();
        for i in 0..100u32 {
            t.insert(sq(i as f64, 0.0, 0.5), i);
        }
        let mut seen = Vec::new();
        t.for_each(|_, v| seen.push(*v));
        seen.sort();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn point_rect_is_degenerate() {
        let p = Rect::point(&[1.0, 2.0]);
        assert_eq!(p.volume(), 0.0);
        assert!(p.intersects(&sq(0.0, 0.0, 3.0)));
    }
}
