//! # sgs-server
//!
//! The TCP network front-end of the streamsum engine (`DESIGN.md` §9,
//! §14): an embeddable [`Server`] that listens on a socket and
//! multiplexes any number of client connections onto **one shared
//! [`Runtime`]** — the step that turns the in-process multi-query engine
//! into a service remote analysts share, per the paper's setting of
//! analysts issuing DETECT/MATCH statements against live streams (§1,
//! Figs. 2–3). The `streamsum-server` binary is a thin CLI around it.
//!
//! ## Session model
//!
//! Connections are driven by a single **reactor thread** (`DESIGN.md`
//! §14): non-blocking sockets registered with the vendored epoll shim,
//! each advanced through an explicit per-connection state machine
//! (reading → executing → writing / pushing). Idle sessions park for
//! free — no thread, no timer, just an epoll registration. Request
//! execution hops onto a bounded `sgs-exec` dispatch pool, spawned with
//! the session principal's fair-share weight, so the reactor never
//! blocks and one tenant's backlog cannot starve another's dispatches.
//! A session:
//!
//! * authenticates at `Hello`: a server configured with auth tokens
//!   refuses a missing or unknown token with
//!   [`sgs_wire::ErrorCode::Unauthorized`] and closes; the matching
//!   token names the session's principal and fair-share weight;
//! * owns its query namespace: ids on the wire are session-local
//!   (`Q0, Q1, ...` per connection), mapped to runtime [`QueryId`]s
//!   through the session's table and tagged with a runtime
//!   [`OwnerId`] — another session cannot name, list, poll, or cancel
//!   them;
//! * feeds only its own queries: `Feed` frames route through the
//!   owner-scoped [`Runtime::session`] seam, so two sessions replaying
//!   the same stream each see exactly their own data (byte-identical to
//!   a solo run), while both archives still merge into the **shared
//!   history** that matching statements query — the paper's
//!   many-analysts / one-history arrangement;
//! * consumes results by poll **or** push: `Subscribe` turns a query's
//!   output buffer into unsolicited `Windows` frames, sent only when
//!   the socket is write-ready (an unread socket exerts plain TCP flow
//!   control; the windows wait in the runtime's bounded output buffer
//!   meanwhile);
//! * is throttled end to end: a full bounded per-query `InputQueue`
//!   blocks the session's `Feed` dispatch, which withholds its ack,
//!   which stops the client.
//!
//! On disconnect (clean `Goodbye` or a dropped socket) the session's
//! live queries are cancelled, so abandoned clients do not leak pipeline
//! state — their archived history remains, by design.

pub mod metrics;
mod reactor;

use std::collections::{BTreeSet, HashMap, HashSet};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use sgs_core::Point;
use sgs_runtime::{
    OwnerId, QueryDescriptor, QueryId, QueryState, QueryStats, Runtime, RuntimeConfig, RuntimeError,
};
use sgs_wire::{
    ErrorCode, Frame, WireMetric, WireMetricValue, WireQuery, WireQueryState, WireStats, WireWindow,
};

pub use metrics::spawn_metrics_listener;
use metrics::ServerMetrics;

/// One shared-secret credential a [`Server`] accepts at `Hello`
/// ([`ServerConfig::auth_tokens`]).
#[derive(Clone, Debug)]
pub struct AuthToken {
    /// Principal name, for logs and diagnostics.
    pub name: String,
    /// The secret a client's `Hello` must carry verbatim.
    pub secret: String,
    /// Fair-share weight of this principal's dispatches on the server's
    /// dispatch pool and of its queries on the runtime scheduler
    /// (stride scheduling: a weight-2 principal is dispatched twice as
    /// often as a weight-1 one under contention). Clamped to ≥ 1.
    pub weight: u32,
}

/// Construction-time settings of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Configuration of the shared [`Runtime`] all sessions multiplex
    /// onto. Note that [`RuntimeConfig::output_policy`] governs every
    /// session's poll buffers; `Block` requires clients to interleave
    /// polls with feeds (see `DESIGN.md` §9) — prefer `DropOldest` for
    /// slow remote consumers.
    pub runtime: RuntimeConfig,
    /// Source streams to register (name, dimensionality). Defaults to
    /// the two generator streams: `gmti` (2-d) and `stt` (4-d).
    pub streams: Vec<(String, usize)>,
    /// Close a session that produces no complete request frame within
    /// this window (counted from the previous complete frame).
    /// Sessions holding an active subscription are exempt — a
    /// subscriber is legitimately silent. `None` (the default) keeps
    /// sessions open indefinitely — the historical behavior.
    pub idle_timeout: Option<Duration>,
    /// Per-owner admission control: maximum live (non-cancelled)
    /// queries one session may hold. A `Submit` of a DETECT statement
    /// past the limit is refused with
    /// [`ErrorCode::QuotaExceeded`]; cancelling a query frees a slot.
    /// `None` (the default) is unlimited.
    pub owner_max_queries: Option<usize>,
    /// Per-owner admission control: maximum bytes of
    /// admitted-but-unprocessed input across one session's query input
    /// queues. A `Feed` that would exceed it is refused whole with
    /// [`ErrorCode::QuotaExceeded`]; processing drains the level.
    /// `None` (the default) is unlimited (backpressure alone governs).
    pub owner_max_queue_bytes: Option<usize>,
    /// Per-owner admission control: once one session's
    /// completed-but-unpolled windows exceed this many (wire-encoded)
    /// bytes, further `Feed`s are refused with
    /// [`ErrorCode::QuotaExceeded`] until the session polls (or its
    /// subscription drains them). `None` (the default) is unlimited.
    pub owner_max_buffer_bytes: Option<usize>,
    /// Accepted `Hello` credentials. Empty (the default) means open
    /// access: every session is anonymous with fair-share weight 1. Non-
    /// empty means a `Hello` carrying no token, or a token matching no
    /// entry, is refused with [`ErrorCode::Unauthorized`] and the
    /// connection is closed.
    pub auth_tokens: Vec<AuthToken>,
    /// Workers on the server's dispatch pool — the threads request
    /// execution hops onto so the reactor never blocks. Blocking
    /// requests (a backpressured `Feed`, a `Cancel` draining a deep
    /// backlog, `Quiesce`) occupy a worker for their duration, so this
    /// bounds how many sessions can block concurrently. Clamped to ≥ 1;
    /// default 4.
    pub dispatch_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            runtime: RuntimeConfig::default(),
            streams: vec![("gmti".into(), 2), ("stt".into(), 4)],
            idle_timeout: None,
            owner_max_queries: None,
            owner_max_queue_bytes: None,
            owner_max_buffer_bytes: None,
            auth_tokens: Vec::new(),
            dispatch_threads: 4,
        }
    }
}

/// Byte budget of one `Windows` response page (8 MiB — an 8× margin
/// under [`sgs_wire::MAX_FRAME_LEN`]): a `Poll` reply or a pushed
/// subscription frame stops collecting once the accumulated window
/// payload crosses it, leaving the rest buffered for the next page.
const POLL_PAGE_BYTES: usize = 8 << 20;

/// The session-limit subset of [`ServerConfig`], shared with the
/// reactor and every dispatch task.
#[derive(Clone, Copy, Debug, Default)]
struct Limits {
    idle_timeout: Option<Duration>,
    owner_max_queries: Option<usize>,
    owner_max_queue_bytes: Option<usize>,
    owner_max_buffer_bytes: Option<usize>,
}

/// One live session's entry in the drain registry: a socket clone to
/// force-close stragglers with, and the owner whose output buffers must
/// be released when that happens (a force-closed session may be wedged
/// mid-`Feed` behind a full `Block`-policy buffer).
struct Seat {
    socket: TcpStream,
    owner: OwnerId,
}

/// What a dispatch asks the reactor to do to the session state it owns
/// (dispatch tasks see a snapshot; the reactor holds the canon).
enum Effect {
    /// Nothing beyond sending the reply.
    None,
    /// A DETECT registration succeeded: append the id to the session's
    /// query table (its local id is the reply's `Registered.query`).
    NewQuery(QueryId),
    /// Switch the local query to push delivery: install the
    /// output-buffer notify hook and exempt the session from the idle
    /// timeout.
    Subscribe(u64),
    /// Revert the local query to poll delivery: clear the hook.
    Unsubscribe(u64),
}

/// A finished dispatch, queued for the reactor by the dispatch task.
struct Completion {
    /// The connection the request came from.
    token: u64,
    /// The response frame to enqueue (dropped if the session is already
    /// closing).
    reply: Frame,
    /// Session-state change to apply before the reply is sent.
    effect: Effect,
    /// The request was `Goodbye`: send the reply, then close cleanly.
    goodbye: bool,
}

/// The reactor's cross-thread mailbox: dispatch completions and
/// output-buffer readiness, each paired with a waker byte so the
/// reactor's readiness wait returns promptly.
struct Mailbox {
    completions: Mutex<Vec<Completion>>,
    /// (connection token, session-local query id) pairs whose output
    /// buffer has news — fed by the notify hooks subscriptions install.
    pushes: Mutex<BTreeSet<(u64, u64)>>,
    /// Write end of the reactor's self-pipe (the read end is registered
    /// with epoll). `None` until [`Server::run`] starts the reactor.
    waker: Mutex<Option<UnixStream>>,
}

impl Mailbox {
    fn new() -> Mailbox {
        Mailbox {
            completions: Mutex::new(Vec::new()),
            pushes: Mutex::new(BTreeSet::new()),
            waker: Mutex::new(None),
        }
    }

    /// Nudge the reactor out of its readiness wait. Best-effort: a full
    /// pipe means wakes are already pending, and a missing pipe means
    /// the reactor is not running (nothing to wake).
    fn wake(&self) {
        use std::io::Write;
        if let Some(pipe) = &*self.waker.lock().unwrap() {
            let _ = (&*pipe).write(&[1u8]);
        }
    }
}

/// State shared by the reactor thread, the dispatch pool, and control
/// handles.
struct Shared {
    rt: RwLock<Runtime>,
    shutting_down: AtomicBool,
    /// Set by [`ServerHandle::drain`]: the reactor sends `GoAway` to
    /// every session and closes instead of serving further requests.
    draining: AtomicBool,
    /// Set once [`ServerHandle::drain`] has finished its final
    /// checkpoint; [`Server::run`] waits for it before returning so the
    /// hosting process cannot exit mid-checkpoint.
    drain_done: AtomicBool,
    /// The `drain_millis` value `GoAway` frames advertise.
    drain_millis: AtomicU64,
    /// Live sessions by connection token — present from a successful
    /// `Hello` until the session's teardown (cancel + evict) has fully
    /// finished, so an empty registry means the runtime holds no
    /// session state.
    seats: Mutex<HashMap<u64, Seat>>,
    next_token: AtomicU64,
    limits: Limits,
    auth: Vec<AuthToken>,
    /// The dispatch pool request execution hops onto
    /// (deliberately separate from the runtime's scheduler pool: a
    /// blocking `Feed` must not occupy a worker the queries it is
    /// waiting on need).
    dispatch: sgs_exec::Pool,
    mailbox: Mailbox,
    metrics: ServerMetrics,
}

/// The listening server. Construct with [`Server::bind`], then either
/// [`run`](Server::run) on the current thread or hand it to a spawned
/// one (tests drive an in-process server exactly that way).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Clonable controller for a running [`Server`] (shutdown from another
/// thread).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Stop accepting connections and make [`Server::run`] return once
    /// the sessions alive at this moment have ended. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Wake the reactor with a throwaway connection. An unspecified
        // bind address (0.0.0.0 / ::) is not connectable — rewrite it
        // to the matching loopback, same port.
        let mut addr = self.addr;
        if addr.ip().is_unspecified() {
            match &mut addr {
                SocketAddr::V4(v4) => v4.set_ip(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(v6) => v6.set_ip(std::net::Ipv6Addr::LOCALHOST),
            }
        }
        let _ = TcpStream::connect(addr);
        self.shared.mailbox.wake();
    }

    /// Gracefully drain the server (`DESIGN.md` §12): stop accepting,
    /// announce `GoAway` to every session, wait up to `timeout` for
    /// sessions to finish voluntarily, force-close the stragglers
    /// (socket shutdown + releasing their owners' output buffers, so
    /// even a session wedged mid-`Feed` unblocks), and finally
    /// checkpoint every durable history base so a restarted server
    /// recovers the archive from a clean store file. Returns the number
    /// of sessions that had to be force-closed (0 = fully graceful).
    /// [`Server::run`] returns once the drain completes.
    pub fn drain(&self, timeout: Duration) -> usize {
        let shared = &self.shared;
        shared.metrics.drains.inc();
        shared
            .drain_millis
            .store(timeout.as_millis() as u64, Ordering::SeqCst);
        shared.draining.store(true, Ordering::SeqCst);
        self.shutdown();

        // Phase 1: the reactor notices the flag at its next wakeup,
        // sends GoAway everywhere, and tears sessions down. Wait out
        // the grace window.
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if shared.seats.lock().unwrap().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }

        // Phase 2: force-close whoever is left. Shutting the socket
        // surfaces as a hangup in the reactor; releasing the owner's
        // output buffers breaks a Feed wedged behind a full
        // Block-policy buffer (its dispatch then completes and the
        // session unwinds).
        let forced = {
            let seats = shared.seats.lock().unwrap();
            for seat in seats.values() {
                let _ = seat.socket.shutdown(Shutdown::Both);
                shared.rt.read().close_outputs(seat.owner);
            }
            seats.len()
        };
        // Forced sessions unwind through normal teardown; give that a
        // bounded grace so the checkpoint below sees their cancels.
        let grace = Instant::now() + Duration::from_secs(5);
        while forced > 0 && Instant::now() < grace {
            if shared.seats.lock().unwrap().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }

        // Phase 3: make the archive durable *now*. Teardown only
        // cancels pipelines; the WAL would recover without this, but a
        // checkpointed store file makes restart recovery instant and
        // exercises the same path as the periodic checkpointer.
        let rt = shared.rt.read();
        for (_dim, history) in rt.histories() {
            let mut base = history.write();
            if base.is_durable() {
                let _ = base.checkpoint();
            }
        }
        drop(rt);
        shared.drain_done.store(true, Ordering::SeqCst);
        forced
    }
}

impl Server {
    /// Bind the listening socket and build the shared runtime. Use port
    /// 0 to let the OS pick (read it back with
    /// [`local_addr`](Self::local_addr)).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let mut rt = Runtime::with_config(config.runtime);
        for (name, dim) in &config.streams {
            rt.register_stream(name, *dim);
        }
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                rt: RwLock::new(rt),
                shutting_down: AtomicBool::new(false),
                draining: AtomicBool::new(false),
                drain_done: AtomicBool::new(false),
                drain_millis: AtomicU64::new(0),
                seats: Mutex::new(HashMap::new()),
                next_token: AtomicU64::new(0),
                limits: Limits {
                    idle_timeout: config.idle_timeout,
                    owner_max_queries: config.owner_max_queries,
                    owner_max_queue_bytes: config.owner_max_queue_bytes,
                    owner_max_buffer_bytes: config.owner_max_buffer_bytes,
                },
                auth: config.auth_tokens,
                dispatch: sgs_exec::Pool::new(config.dispatch_threads.max(1)),
                mailbox: Mailbox::new(),
                metrics: ServerMetrics::new(),
            }),
        })
    }

    /// The bound address (the real port when bound to port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A controller usable from other threads.
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle {
            shared: self.shared.clone(),
            addr: self.local_addr()?,
        })
    }

    /// Serve connections on the reactor until [`ServerHandle::shutdown`].
    /// The calling thread *is* the reactor; the call returns after the
    /// accept loop stops, every session has ended, and session teardown
    /// has finished.
    pub fn run(self) -> io::Result<()> {
        let shared = self.shared;
        reactor::run(self.listener, &shared)?;
        // Session teardown (cancel + evict) runs on the dispatch pool;
        // wait for the seats to empty so "run returned" keeps meaning
        // "no session state remains in the runtime".
        while !shared.seats.lock().unwrap().is_empty() {
            std::thread::sleep(Duration::from_millis(5));
        }
        // A drain wakes the reactor long before its final checkpoint.
        // Honor the documented contract — `run` returns once the drain
        // *completes* — so a `main` that exits right after us cannot
        // kill the checkpoint midway.
        while shared.draining.load(Ordering::SeqCst) && !shared.drain_done.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(10));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Dispatch (runs on the dispatch pool)
// ---------------------------------------------------------------------------

/// The snapshot of session state a dispatch task works against. The
/// reactor owns the canonical copy and applies the returned [`Effect`]
/// itself; at most one dispatch is in flight per connection, so the
/// snapshot cannot go stale.
struct SessionView {
    owner: OwnerId,
    queries: Vec<QueryId>,
    subscribed: HashSet<u64>,
}

impl SessionView {
    fn resolve(&self, local: u64) -> Result<QueryId, Frame> {
        self.queries
            .get(local as usize)
            .copied()
            .ok_or_else(|| error_frame(ErrorCode::UnknownQuery, format!("no query Q{local}")))
    }
}

/// Execute one request frame against the shared runtime. Pure with
/// respect to session state: changes come back as an [`Effect`] for the
/// reactor to apply.
fn dispatch(shared: &Shared, view: &SessionView, frame: Frame) -> (Frame, Effect) {
    shared.metrics.count_frame(frame.kind());
    let reply = match frame {
        Frame::Hello { .. } => error_frame(ErrorCode::Protocol, "duplicate Hello".into()),
        Frame::Submit { text } => {
            // Plan first under the read lock; only a DETECT registration
            // needs the exclusive write lock. Matching statements run
            // entirely under the read side, so one analyst's (possibly
            // long) history scan never stalls other sessions.
            let planned = shared.rt.read().plan(&text);
            match planned {
                Ok(sgs_runtime::QueryPlan::Detect(plan)) => {
                    let mut rt = shared.rt.write();
                    // Admission control, checked and enforced under the
                    // same write-lock hold as the registration so two
                    // racing submits cannot both squeeze under the cap.
                    if let Some(max) = shared.limits.owner_max_queries {
                        let live = rt
                            .queries_for(view.owner)
                            .iter()
                            .filter(|d| d.state != QueryState::Cancelled)
                            .count();
                        if live >= max {
                            shared.metrics.quota_rejections.inc();
                            return (
                                error_frame(
                                    ErrorCode::QuotaExceeded,
                                    format!(
                                        "session holds {live} live queries (limit {max}); \
                                         cancel one to free a slot"
                                    ),
                                ),
                                Effect::None,
                            );
                        }
                    }
                    match rt.session(view.owner).submit_detect(*plan) {
                        Ok(id) => {
                            return (
                                Frame::Registered {
                                    query: view.queries.len() as u64,
                                },
                                Effect::NewQuery(id),
                            );
                        }
                        Err(e) => runtime_error_frame(&e),
                    }
                }
                Ok(sgs_runtime::QueryPlan::Match(plan)) => {
                    match shared.rt.read().run_match(&plan) {
                        Ok(outcome) => Frame::Matches {
                            candidates: outcome.candidates as u64,
                            refined: outcome.refined as u64,
                            matches: outcome
                                .matches
                                .iter()
                                .map(|m| sgs_wire::WireMatch {
                                    pattern: m.id.0,
                                    distance: m.distance,
                                })
                                .collect(),
                        },
                        Err(e) => runtime_error_frame(&e),
                    }
                }
                Err(e) => runtime_error_frame(&e),
            }
        }
        Frame::Feed { stream, points } => feed(shared, view, &stream, &points),
        Frame::Poll { query, max } => {
            let local = query;
            if view.subscribed.contains(&local) {
                return (
                    error_frame(
                        ErrorCode::InvalidTransition,
                        format!(
                            "query Q{local} is subscribed (push delivery); \
                             Unsubscribe before polling"
                        ),
                    ),
                    Effect::None,
                );
            }
            match view.resolve(local) {
                Ok(id) => {
                    let rt = shared.rt.read();
                    match rt.poll_batch(id, max as usize) {
                        Ok(mut batch) => match page_windows(&mut batch) {
                            Ok(windows) => Frame::Windows {
                                query: local,
                                windows,
                            },
                            Err(oversized) => error_frame(
                                ErrorCode::Internal,
                                format!(
                                    "window {oversized} encodes beyond the frame cap — \
                                     cancel the query to discard it"
                                ),
                            ),
                        },
                        Err(e) => runtime_error_frame(&e),
                    }
                }
                Err(e) => e,
            }
        }
        Frame::Subscribe { query } => match view.resolve(query) {
            // Idempotent: re-subscribing re-arms the notify hook, which
            // simply re-fires for any backlog.
            Ok(_) => return (Frame::OkAck, Effect::Subscribe(query)),
            Err(e) => e,
        },
        Frame::Unsubscribe { query } => match view.resolve(query) {
            Ok(_) if view.subscribed.contains(&query) => {
                return (Frame::OkAck, Effect::Unsubscribe(query));
            }
            // Unsubscribing a non-subscribed query is a no-op ack.
            Ok(_) => Frame::OkAck,
            Err(e) => e,
        },
        Frame::StatsReq { query } => match view.resolve(query) {
            Ok(id) => {
                let rt = shared.rt.read();
                match (rt.state(id), rt.stats(id), rt.text_of(id)) {
                    (Ok(state), Ok(stats), Ok(text)) => Frame::StatsReply(WireQuery {
                        query,
                        state: wire_state(state),
                        text: text.to_string(),
                        stats: wire_stats(&stats),
                    }),
                    (Err(e), ..) | (_, Err(e), _) | (.., Err(e)) => runtime_error_frame(&e),
                }
            }
            Err(e) => e,
        },
        Frame::ListQueries => {
            let rt = shared.rt.read();
            let descriptors = rt.queries_for(view.owner);
            Frame::Queries(
                view.queries
                    .iter()
                    .enumerate()
                    .filter_map(|(local, id)| {
                        descriptors
                            .iter()
                            .find(|d| d.id == *id)
                            .map(|d| describe(local as u64, d))
                    })
                    .collect(),
            )
        }
        Frame::Pause { query } => lifecycle(shared, view, query, |rt, id| rt.pause(id)),
        Frame::Resume { query } => lifecycle(shared, view, query, |rt, id| rt.resume(id)),
        Frame::Cancel { query } => match view.resolve(query) {
            // Queue the stop under the write lock, but wait for the
            // backlog drain with the lock released — a cancel of a
            // deeply-queued query must not stall other sessions. The
            // begun cancel is bound first so the guard (a temporary in
            // the expression) is dropped before `wait()` blocks.
            Ok(id) => {
                let begun = shared.rt.write().cancel_begin(id);
                match begun.and_then(|pending| pending.wait()) {
                    Ok(report) => Frame::Report {
                        query,
                        stats: wire_stats(&report.stats),
                    },
                    Err(e) => runtime_error_frame(&e),
                }
            }
            Err(e) => e,
        },
        Frame::Bind { name, sgs } => {
            // The wire decoder checks structure only; enforce the full
            // Sgs invariants before the summary enters the shared
            // binding namespace every session's matching reads.
            if let Err(e) = sgs.validate() {
                return (
                    error_frame(ErrorCode::Plan, format!("invalid cluster summary: {e}")),
                    Effect::None,
                );
            }
            shared.rt.write().bind_cluster(&name, sgs);
            Frame::OkAck
        }
        Frame::Quiesce => {
            // Barrier over this session's queries only (its feeds target
            // nothing else). Snapshot under the lock, wait without it —
            // the barrier can take as long as the queued work.
            let feeder = shared.rt.read().feeder(Some(view.owner), None);
            feeder.quiesce();
            Frame::OkAck
        }
        Frame::Goodbye => Frame::OkAck,
        Frame::MetricsReq => Frame::MetricsReply(
            sgs_obs::registry()
                .snapshot()
                .into_iter()
                .map(|m| WireMetric {
                    name: m.name,
                    value: match m.value {
                        sgs_obs::MetricValue::Counter(v) => WireMetricValue::Counter(v),
                        sgs_obs::MetricValue::Gauge(v) => WireMetricValue::Gauge(v),
                        sgs_obs::MetricValue::Histogram(h) => WireMetricValue::Histogram {
                            count: h.count,
                            sum: h.sum,
                            max: h.max,
                            p50: h.p50,
                            p95: h.p95,
                            p99: h.p99,
                        },
                    },
                })
                .collect(),
        ),
        // Response kinds are not requests.
        other => error_frame(
            ErrorCode::Protocol,
            format!("frame kind {:#04x} is not a request", other.kind()),
        ),
    };
    (reply, Effect::None)
}

/// Collect one page of windows from a poll batch, bounded by
/// [`POLL_PAGE_BYTES`]: a window that would push the page past the
/// budget goes back into the buffer for the next page request, so a
/// response only ever exceeds the budget when a *single* window does —
/// and one beyond the protocol's frame cap is refused (`Err` carries
/// its window id) rather than shipped as an undecodable frame.
///
/// Shared between the `Poll` reply and the subscription push path, so
/// pushed `Windows` frames are byte-identical to what polling the same
/// buffer would have returned.
fn page_windows(batch: &mut sgs_runtime::PollBatch) -> Result<Vec<WireWindow>, u64> {
    let mut windows = Vec::new();
    let mut bytes = 0usize;
    while let Some((window, clusters)) = batch.next() {
        let w = WireWindow { window, clusters };
        let cost = w.encoded_len();
        if cost > sgs_wire::MAX_FRAME_LEN - 1024 {
            let id = w.window.0;
            batch.put_back(w.window, w.clusters);
            if windows.is_empty() {
                return Err(id);
            }
            break;
        }
        if !windows.is_empty() && bytes + cost > POLL_PAGE_BYTES {
            batch.put_back(w.window, w.clusters);
            break;
        }
        bytes += cost;
        windows.push(w);
        if bytes >= POLL_PAGE_BYTES {
            break;
        }
    }
    Ok(windows)
}

/// `Feed` dispatch: validate against the catalog, then route through the
/// bounded input queues of this session's queries (blocking = the
/// backpressure path; the ack is withheld until the batch is queued).
///
/// The runtime lock is held only for validation and the
/// [`Runtime::feeder`] snapshot, **not** across the potentially long
/// backpressure block — otherwise one stalled session would wedge every
/// write operation (submits, teardowns, even new sessions' handshakes)
/// server-wide.
fn feed(shared: &Shared, view: &SessionView, stream: &str, points: &[Point]) -> Frame {
    let feeder = {
        let rt = shared.rt.read();
        let Some(dim) = rt.planner().catalog().dim_of(stream) else {
            return error_frame(
                ErrorCode::UnknownStream,
                format!("stream {stream:?} is not in the catalog"),
            );
        };
        if let Some(bad) = points.iter().find(|p| p.dim() != dim) {
            return error_frame(
                ErrorCode::Dimension,
                format!(
                    "stream {stream:?} is {dim}-dimensional, got a {}-dimensional point",
                    bad.dim()
                ),
            );
        }
        // Admission control (DESIGN.md §12): refuse the batch *whole*
        // before anything is enqueued, so a rejected Feed has no
        // partial effect. Input-side: the points about to be queued
        // (charged at the runtime's per-point queue cost) must fit
        // under the owner's queued-input cap. Output-side: a session
        // sitting on too many unpolled windows must poll before it may
        // feed more — the non-blocking counterpart of `Block`.
        if let Some(max) = shared.limits.owner_max_queue_bytes {
            let incoming: usize = points.iter().map(|p| 16 + 8 * p.dim()).sum();
            let queued = rt.input_queue_bytes_for(view.owner);
            if queued.saturating_add(incoming) > max {
                shared.metrics.quota_rejections.inc();
                return error_frame(
                    ErrorCode::QuotaExceeded,
                    format!(
                        "feeding {incoming} bytes atop {queued} queued would pass the \
                         owner's input-queue limit of {max} bytes; let processing drain \
                         and retry"
                    ),
                );
            }
        }
        if let Some(max) = shared.limits.owner_max_buffer_bytes {
            let buffered = rt.output_bytes_for(view.owner);
            if buffered > max {
                shared.metrics.quota_rejections.inc();
                return error_frame(
                    ErrorCode::QuotaExceeded,
                    format!(
                        "{buffered} bytes of completed windows are waiting unpolled \
                         (limit {max}); poll to release the quota"
                    ),
                );
            }
        }
        rt.feeder(Some(view.owner), Some(stream))
    };
    {
        let _block = sgs_obs::SpanGuard::new(&shared.metrics.feed_block_nanos);
        feeder.push_batch(points);
    }
    Frame::OkAck
}

fn lifecycle(
    shared: &Shared,
    view: &SessionView,
    local: u64,
    op: impl FnOnce(&mut Runtime, QueryId) -> Result<(), RuntimeError>,
) -> Frame {
    match view.resolve(local) {
        Ok(id) => match op(&mut shared.rt.write(), id) {
            Ok(()) => Frame::OkAck,
            Err(e) => runtime_error_frame(&e),
        },
        Err(e) => e,
    }
}

// ---------------------------------------------------------------------------
// Runtime → wire mappings
// ---------------------------------------------------------------------------

/// The frame a draining server sends in place of any further response.
fn goaway_frame(shared: &Shared) -> Frame {
    Frame::GoAway {
        reason: "server draining".into(),
        drain_millis: shared.drain_millis.load(Ordering::SeqCst),
    }
}

/// The typed farewell of an idle-timeout close.
fn idle_timeout_frame(shared: &Shared) -> Frame {
    let window = shared.limits.idle_timeout.unwrap_or_default();
    error_frame(
        ErrorCode::Protocol,
        format!("idle timeout: no complete request within {window:?}"),
    )
}

fn wire_state(state: QueryState) -> WireQueryState {
    match state {
        QueryState::Running => WireQueryState::Running,
        QueryState::Paused => WireQueryState::Paused,
        QueryState::Cancelled => WireQueryState::Cancelled,
        QueryState::Failed => WireQueryState::Failed,
    }
}

fn wire_stats(stats: &QueryStats) -> WireStats {
    WireStats {
        points: stats.points,
        windows: stats.windows,
        clusters: stats.clusters,
        windows_dropped: stats.windows_dropped,
        archived: stats.archived,
        archive_bytes: stats.archive_bytes as u64,
        busy_nanos: stats.busy_nanos,
        error: stats.error.clone(),
    }
}

fn describe(local: u64, descriptor: &QueryDescriptor) -> WireQuery {
    WireQuery {
        query: local,
        state: wire_state(descriptor.state),
        text: descriptor.text.clone(),
        stats: wire_stats(&descriptor.stats),
    }
}

fn error_frame(code: ErrorCode, message: String) -> Frame {
    Frame::Error { code, message }
}

fn runtime_error_frame(e: &RuntimeError) -> Frame {
    let code = match e {
        RuntimeError::Plan(_) | RuntimeError::Query(_) => ErrorCode::Plan,
        RuntimeError::UnknownQuery(_) => ErrorCode::UnknownQuery,
        RuntimeError::UnknownBinding(_) => ErrorCode::UnknownBinding,
        RuntimeError::InvalidTransition { .. } | RuntimeError::Disconnected(_) => {
            ErrorCode::InvalidTransition
        }
        RuntimeError::Archive(_) => ErrorCode::Internal,
    };
    error_frame(code, e.to_string())
}
