//! Point-set distance for RSP matching (§8.2).
//!
//! The paper measures RSP-to-RSP distance with the subset matching
//! algorithm of \[15\]; the operative quantity is "how far is each sampled
//! point from the other cluster's sample". We implement the symmetric
//! (average-of-both-directions) Chamfer distance, normalized by the sets'
//! spread so it lands in `[0, 1]` — the same O(n·m) cost profile that makes
//! RSP matching slow in Fig. 8.

use sgs_summarize::Rsp;

/// Normalized symmetric Chamfer distance between two point samples.
pub fn chamfer_distance(a: &Rsp, b: &Rsp) -> f64 {
    chamfer_points(&a.sample, &b.sample)
}

/// Chamfer distance on raw point buffers.
pub fn chamfer_points(a: &[Box<[f64]>], b: &[Box<[f64]>]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    let dir = |from: &[Box<[f64]>], to: &[Box<[f64]>]| -> f64 {
        from.iter()
            .map(|p| {
                to.iter()
                    .map(|q| sgs_core::dist(p, q))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum::<f64>()
            / from.len() as f64
    };
    let spread = {
        let dim = a[0].len();
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for p in a.iter().chain(b.iter()) {
            for d in 0..dim {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        lo.iter()
            .zip(hi.iter())
            .map(|(l, h)| (h - l) * (h - l))
            .sum::<f64>()
            .sqrt()
            .max(1e-9)
    };
    (((dir(a, b) + dir(b, a)) / 2.0) / spread).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Box<[f64]>> {
        v.iter().map(|(x, y)| vec![*x, *y].into()).collect()
    }

    #[test]
    fn identical_sets_have_zero_distance() {
        let a = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        assert_eq!(chamfer_points(&a, &a), 0.0);
    }

    #[test]
    fn empty_set_cases() {
        let a = pts(&[(0.0, 0.0)]);
        assert_eq!(chamfer_points(&[], &[]), 0.0);
        assert_eq!(chamfer_points(&a, &[]), 1.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = pts(&[(0.5, 0.5), (2.0, 2.0), (3.0, 0.0)]);
        assert!((chamfer_points(&a, &b) - chamfer_points(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn closer_shapes_are_closer() {
        let base = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let near = pts(&[(0.1, 0.1), (1.1, 0.0), (2.0, 0.1)]);
        let far = pts(&[(0.0, 5.0), (5.0, 5.0), (9.0, 0.0)]);
        assert!(chamfer_points(&base, &near) < chamfer_points(&base, &far));
    }

    #[test]
    fn bounded_by_one() {
        let a = pts(&[(0.0, 0.0)]);
        let b = pts(&[(1000.0, 1000.0)]);
        let d = chamfer_points(&a, &b);
        assert!((0.0..=1.0).contains(&d));
    }
}
