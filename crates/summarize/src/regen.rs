//! Approximate full-representation regeneration from an SGS.
//!
//! §1 of the paper: *"one can design pattern visualization or full
//! representation re-generation techniques based on pattern
//! summarizations."* This module is that technique: given only the
//! summary, synthesize a point set with the same per-cell populations.
//! By Lemma 4.3 every regenerated point is within θr of a true cluster
//! member, and by Lemma 4.4 the density of any cell-aligned sub-region is
//! exact — the regeneration inherits the summary's fidelity guarantees.

use rand::Rng;
use sgs_core::GridGeometry;

use crate::member::MemberSet;
use crate::sgs::{CellStatus, Sgs};

/// Synthesize a member set from a summary: `population` points are drawn
/// uniformly inside each skeletal cell; points of core cells become cores,
/// points of edge cells become edges.
pub fn regenerate(sgs: &Sgs, rng: &mut impl Rng) -> MemberSet {
    let mut cores = Vec::new();
    let mut edges = Vec::new();
    for cell in &sgs.cells {
        let target = match cell.status {
            CellStatus::Core => &mut cores,
            CellStatus::Edge => &mut edges,
        };
        for _ in 0..cell.population {
            let p: Box<[f64]> = cell
                .coord
                .0
                .iter()
                .map(|&c| (c as f64 + rng.gen_range(0.0..1.0)) * sgs.side)
                .collect();
            target.push(p);
        }
    }
    MemberSet::new(cores, edges)
}

/// Quality of a regeneration against the original members: the symmetric
/// mean nearest-neighbor distance, which Lemma 4.3 bounds by the cell
/// diagonal (θr for a basic grid).
pub fn regeneration_error(original: &MemberSet, regenerated: &MemberSet) -> f64 {
    let orig: Vec<&[f64]> = original.iter_all().collect();
    let regen: Vec<&[f64]> = regenerated.iter_all().collect();
    if orig.is_empty() || regen.is_empty() {
        return if orig.len() == regen.len() {
            0.0
        } else {
            f64::INFINITY
        };
    }
    let dir = |from: &[&[f64]], to: &[&[f64]]| -> f64 {
        from.iter()
            .map(|p| {
                to.iter()
                    .map(|q| sgs_core::dist(p, q))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum::<f64>()
            / from.len() as f64
    };
    (dir(&orig, &regen) + dir(&regen, &orig)) / 2.0
}

/// Convenience: regenerate and re-summarize, verifying the roundtrip
/// produces the identical cell decomposition (population per cell is
/// preserved by construction; statuses survive because regenerated core
/// cells keep their density). Returns the re-summarized SGS.
pub fn resummarize(sgs: &Sgs, geometry: &GridGeometry, rng: &mut impl Rng) -> Sgs {
    let members = regenerate(sgs, rng);
    Sgs::from_members(&members, geometry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample() -> (Sgs, MemberSet, GridGeometry) {
        let g = GridGeometry::basic(2, 1.0);
        let cores: Vec<Box<[f64]>> = (0..80)
            .map(|i| vec![0.05 + (i % 10) as f64 * 0.3, 0.05 + (i / 10) as f64 * 0.3].into())
            .collect();
        let members = MemberSet::new(cores, vec![]);
        (Sgs::from_members(&members, &g), members, g)
    }

    #[test]
    fn population_is_preserved_exactly() {
        let (sgs, members, _) = sample();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let regen = regenerate(&sgs, &mut rng);
        assert_eq!(regen.population(), members.population());
        assert_eq!(regen.cores.len() + regen.edges.len(), members.population());
    }

    #[test]
    fn regenerated_points_fall_inside_their_cells() {
        let (sgs, _, g) = sample();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let regen = regenerate(&sgs, &mut rng);
        for p in regen.iter_all() {
            let cell = g.cell_of(&sgs_core::Point::new(p.to_vec(), 0));
            assert!(
                sgs.index_of(&cell).is_some(),
                "regenerated point {p:?} fell outside the summary"
            );
        }
    }

    #[test]
    fn lemma_4_3_error_bound_holds() {
        let (sgs, members, g) = sample();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let regen = regenerate(&sgs, &mut rng);
        let err = regeneration_error(&members, &regen);
        // Mean NN distance is far below the worst-case bound; assert the
        // hard bound (θr = cell diagonal) as the invariant.
        assert!(err <= g.theta_r(), "error {err} exceeds θr");
    }

    #[test]
    fn resummarize_reproduces_cell_structure() {
        let (sgs, _, g) = sample();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let again = resummarize(&sgs, &g, &mut rng);
        assert_eq!(again.volume(), sgs.volume());
        for (a, b) in sgs.cells.iter().zip(again.cells.iter()) {
            assert_eq!(a.coord, b.coord);
            assert_eq!(a.population, b.population);
        }
    }

    #[test]
    fn empty_summary_regenerates_empty() {
        let sgs = Sgs {
            dim: 2,
            side: 1.0,
            level: 0,
            cells: vec![],
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let regen = regenerate(&sgs, &mut rng);
        assert_eq!(regen.population(), 0);
        assert_eq!(regeneration_error(&MemberSet::default(), &regen), 0.0);
    }
}
