//! Full-representation regeneration (§1's "re-generation techniques based
//! on pattern summarizations") checked end to end: regenerating from an
//! archived SGS must produce a point set that (a) respects the fidelity
//! lemmas and (b) *re-clusters* into a structure matching the summary.

use rand::SeedableRng;
use streamsum::prelude::*;
use streamsum::summarize::{regenerate, regeneration_error, CellStatus};

fn archive_from_stream() -> (StreamPipeline, Vec<MemberSet>) {
    let query = ClusterQuery::new(0.5, 6, 2, WindowSpec::count(2500, 500).unwrap()).unwrap();
    let mut engine = WindowEngine::new(query.window, 2);
    let mut csgs = CSgs::new(query.clone());
    let mut pipeline = StreamPipeline::new(query, ArchivePolicy::MinPopulation(60), 0).unwrap();
    let stream = generate_gmti(&GmtiConfig {
        n_records: 10_000,
        n_convoys: 5,
        ..GmtiConfig::default()
    });
    // Run the pipeline while also keeping member coordinates for the
    // fidelity comparison (ids are resolved through a side map).
    let mut coords: std::collections::HashMap<PointId, Box<[f64]>> = Default::default();
    let mut members_per_cluster = Vec::new();
    let mut outs = Vec::new();
    for (next, p) in stream.into_iter().enumerate() {
        coords.insert(PointId(next as u32), p.coords.clone());
        pipeline.push(p.clone()).unwrap();
        engine.push(p, &mut csgs, &mut outs).unwrap();
        for (_, clusters) in outs.drain(..) {
            for c in clusters {
                if c.population() >= 60 {
                    members_per_cluster.push(MemberSet::new(
                        c.cores.iter().map(|id| coords[id].clone()).collect(),
                        c.edges.iter().map(|id| coords[id].clone()).collect(),
                    ));
                }
            }
        }
    }
    (pipeline, members_per_cluster)
}

#[test]
fn regenerated_points_stay_within_theta_r_of_originals() {
    let (pipeline, members) = archive_from_stream();
    assert!(!members.is_empty());
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut checked = 0;
    for (pattern, original) in pipeline.base().iter().zip(members.iter()).take(20) {
        let regen = regenerate(&pattern.sgs, &mut rng);
        // Lemma 4.3: mean nearest-neighbor error bounded by θr.
        let err = regeneration_error(original, &regen);
        assert!(err <= 0.5 + 1e-9, "error {err} exceeds θr");
        checked += 1;
    }
    assert!(checked > 0);
}

#[test]
fn regenerated_core_cells_recluster_together() {
    // Re-clustering the regenerated points must reunite each summary's
    // core cells into one cluster (the summary is one component).
    let (pipeline, _) = archive_from_stream();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let query = ClusterQuery::new(0.5, 6, 2, WindowSpec::count(2500, 500).unwrap()).unwrap();
    let mut checked = 0;
    for pattern in pipeline.base().iter().take(10) {
        let core_population: u32 = pattern
            .sgs
            .cells
            .iter()
            .filter(|c| c.status == CellStatus::Core)
            .map(|c| c.population)
            .sum();
        if core_population < 80 {
            continue; // sparse summaries may not re-cluster densely
        }
        let regen = regenerate(&pattern.sgs, &mut rng);
        let pts: Vec<(PointId, Point)> = regen
            .iter_all()
            .enumerate()
            .map(|(i, p)| (PointId(i as u32), Point::new(p.to_vec(), 0)))
            .collect();
        let clusters = cluster_snapshot(&pts, &query);
        assert!(
            !clusters.is_empty(),
            "regenerated points formed no cluster at all"
        );
        // The dominant regenerated cluster must hold the majority of the
        // core population.
        let biggest = clusters.iter().map(|c| c.population()).max().unwrap();
        assert!(
            biggest * 2 >= core_population as usize,
            "dominant regenerated cluster {biggest} vs core population {core_population}"
        );
        checked += 1;
    }
    assert!(checked > 0, "no summary was dense enough to check");
}
