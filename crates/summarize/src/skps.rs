//! SkPS — Skeletal Point Summarization (§4.2), the graph-based design the
//! paper explores first and ultimately rejects.
//!
//! An SkPS is a minimal set of connected core objects whose neighborhoods
//! cover every cluster member, with the neighbor relations among them as
//! edges (Def. 4.1). Exact minimality is NP-complete, so [`SkPs::from_members`]
//! uses the greedy connected-dominating-set approximation of [`crate::cds`].
//! Its flaws — weak density description, expensive construction, and
//! non-determinism (different member orders give structurally different
//! summaries) — are reproduced faithfully; they are what Figs. 7–9 measure.

use sgs_core::{HeapSize, Point, PointId};
use sgs_index::GridIndex;

use crate::cds::greedy_cds;
use crate::member::MemberSet;

/// Graph summary: skeletal points (selected cores) and the neighbor
/// relations among them.
#[derive(Clone, Debug, PartialEq)]
pub struct SkPs {
    /// Positions of the skeletal points.
    pub points: Vec<Box<[f64]>>,
    /// Undirected edges between skeletal points (indices into `points`,
    /// stored with `a < b`).
    pub edges: Vec<(u32, u32)>,
    /// Population of the summarized cluster.
    pub population: u32,
}

impl SkPs {
    /// Build the (approximate) SkPS of a cluster.
    ///
    /// Targets are all members; candidates are the cores; a core covers
    /// itself plus every member within `theta_r`. The greedy CDS keeps the
    /// chosen set connected in the core-neighbor graph.
    pub fn from_members(members: &MemberSet, theta_r: f64) -> SkPs {
        let n_cores = members.cores.len();
        let n_targets = members.population();
        if n_cores == 0 {
            return SkPs {
                points: Vec::new(),
                edges: Vec::new(),
                population: n_targets as u32,
            };
        }
        let dim = members.dim();
        let geometry = sgs_core::GridGeometry::basic(dim, theta_r);

        // Index every member; ids 0..n_cores are cores, the rest edges.
        let mut index = GridIndex::new(geometry);
        for (i, c) in members.cores.iter().enumerate() {
            index.insert(PointId(i as u32), &Point::new(c.clone(), 0));
        }
        for (j, e) in members.edges.iter().enumerate() {
            index.insert(PointId((n_cores + j) as u32), &Point::new(e.clone(), 0));
        }

        // Core adjacency + coverage.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n_cores];
        let mut coverage: Vec<Vec<u32>> = vec![Vec::new(); n_cores];
        let mut scratch = Vec::new();
        for (i, c) in members.cores.iter().enumerate() {
            scratch.clear();
            index.range_query(c, theta_r, PointId(i as u32), &mut scratch);
            coverage[i].push(i as u32); // covers itself
            for nb in &scratch {
                coverage[i].push(nb.0);
                if (nb.0 as usize) < n_cores {
                    adj[i].push(nb.0);
                }
            }
            coverage[i].sort_unstable();
            coverage[i].dedup();
        }

        let chosen = greedy_cds(&adj, &coverage, n_targets);

        // Re-index the chosen cores and collect edges among them.
        let mut slot = vec![u32::MAX; n_cores];
        for (new_idx, &c) in chosen.iter().enumerate() {
            slot[c as usize] = new_idx as u32;
        }
        let points: Vec<Box<[f64]>> = chosen
            .iter()
            .map(|&c| members.cores[c as usize].clone())
            .collect();
        let mut edges = Vec::new();
        for &c in &chosen {
            for &nb in &adj[c as usize] {
                let (a, b) = (slot[c as usize], slot[nb as usize]);
                if b != u32::MAX && a < b {
                    edges.push((a, b));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();

        SkPs {
            points,
            edges,
            population: n_targets as u32,
        }
    }

    /// Number of skeletal points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the summary is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Degree sequence (sorted descending) — a cheap graph invariant used
    /// by the matcher's candidate filter.
    pub fn degree_sequence(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.points.len()];
        for (a, b) in &self.edges {
            deg[*a as usize] += 1;
            deg[*b as usize] += 1;
        }
        deg.sort_unstable_by(|a, b| b.cmp(a));
        deg
    }

    /// Bytes needed to archive the summary.
    pub fn archived_bytes(&self) -> usize {
        let dim = self.points.first().map_or(0, |p| p.len());
        self.points.len() * dim * 8 + self.edges.len() * 8 + 4
    }
}

impl HeapSize for SkPs {
    fn heap_size(&self) -> usize {
        self.points.capacity() * core::mem::size_of::<Box<[f64]>>()
            + self.points.iter().map(|p| p.len() * 8).sum::<usize>()
            + self.edges.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A dense 1-d chain of cores spaced 0.4 apart (θr = 1.0): every core
    /// covers its two neighbors, so a CDS needs roughly every other core.
    fn chain(n: usize) -> MemberSet {
        MemberSet::new(
            (0..n).map(|i| vec![i as f64 * 0.4, 0.0].into()).collect(),
            vec![],
        )
    }

    fn coverage_holds(skps: &SkPs, members: &MemberSet, theta_r: f64) -> bool {
        members.iter_all().all(|m| {
            skps.points
                .iter()
                .any(|s| sgs_core::dist(s, m) <= theta_r + 1e-12)
        })
    }

    #[test]
    fn covers_all_members() {
        let m = chain(20);
        let s = SkPs::from_members(&m, 1.0);
        assert!(coverage_holds(&s, &m, 1.0));
        assert!(s.len() < 20, "summary should be smaller than the cluster");
    }

    #[test]
    fn skeletal_graph_is_connected() {
        let m = chain(15);
        let s = SkPs::from_members(&m, 1.0);
        // BFS over edges.
        let n = s.len();
        let mut adj = vec![Vec::new(); n];
        for (a, b) in &s.edges {
            adj[*a as usize].push(*b);
            adj[*b as usize].push(*a);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &nb in &adj[v] {
                if !seen[nb as usize] {
                    seen[nb as usize] = true;
                    stack.push(nb as usize);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn edges_covered_through_cores() {
        let m = MemberSet::new(
            vec![vec![0.0, 0.0].into(), vec![0.4, 0.0].into()],
            vec![vec![0.9, 0.0].into()], // edge within 1.0 of the second core
        );
        let s = SkPs::from_members(&m, 1.0);
        assert!(coverage_holds(&s, &m, 1.0));
    }

    #[test]
    fn coreless_cluster_gives_empty_summary() {
        let m = MemberSet::new(vec![], vec![vec![1.0, 1.0].into()]);
        let s = SkPs::from_members(&m, 1.0);
        assert!(s.is_empty());
        assert_eq!(s.population, 1);
    }

    #[test]
    fn order_sensitivity_the_paper_criticizes() {
        // Same cluster, members permuted → potentially different skeletal
        // structure. We assert both are *valid* covers; they need not be
        // equal (that non-determinism is SkPS's documented flaw).
        let m1 = chain(12);
        let mut cores = m1.cores.clone();
        cores.reverse();
        let m2 = MemberSet::new(cores, vec![]);
        let s1 = SkPs::from_members(&m1, 1.0);
        let s2 = SkPs::from_members(&m2, 1.0);
        assert!(coverage_holds(&s1, &m1, 1.0));
        assert!(coverage_holds(&s2, &m2, 1.0));
    }

    #[test]
    fn degree_sequence_sorted() {
        let s = SkPs::from_members(&chain(20), 1.0);
        let d = s.degree_sequence();
        assert!(d.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(d.len(), s.len());
    }
}
