//! Acceptance test for the runtime's determinism guarantee: with k = 3
//! concurrent DETECT queries fanned out from one stream, each query's
//! archived summaries are **byte-identical** (packed encoding) to a solo
//! `StreamPipeline` run of the same query over the same points — the
//! fan-out changes scheduling, never results.

use streamsum::prelude::*;
use streamsum::summarize::packed;

const STATEMENTS: [&str; 3] = [
    "DETECT DensityBasedClusters f+s FROM gmti \
     USING theta_range = 0.6 AND theta_cnt = 8 \
     IN Windows WITH win = 2000 AND slide = 500",
    "DETECT DensityBasedClusters f+s FROM gmti \
     USING theta_range = 0.4 AND theta_cnt = 5 \
     IN Windows WITH win = 1500 AND slide = 300",
    "DETECT DensityBasedClusters f+s FROM gmti \
     USING theta_range = 0.8 AND theta_cnt = 10 \
     IN Windows WITH win = 1000 AND slide = 250",
];

#[test]
fn concurrent_queries_archive_byte_identically_to_solo_runs() {
    let stream = generate_gmti(&GmtiConfig {
        n_records: 8000,
        n_convoys: 4,
        ..GmtiConfig::default()
    });

    // --- Solo reference runs: one StreamPipeline per query, points pushed
    // one at a time (the classic single-query path).
    let mut rt = Runtime::new();
    rt.register_stream("gmti", 2);
    let mut solo_bases = Vec::new();
    for text in STATEMENTS {
        let QueryPlan::Detect(plan) = rt.plan(text).unwrap() else {
            panic!("expected detect plan");
        };
        let mut pipeline =
            StreamPipeline::new(plan.query.clone(), plan.policy.clone(), plan.seed).unwrap();
        for p in stream.clone() {
            pipeline.push(p).unwrap();
        }
        solo_bases.push(pipeline.into_base());
    }

    // --- Concurrent run: all three registered at once, fed in batches
    // through the executor's pool-multiplexed query tasks.
    let mut ids = Vec::new();
    for text in STATEMENTS {
        let Submission::Continuous(id) = rt.submit(text).unwrap() else {
            panic!("expected continuous registration");
        };
        ids.push(id);
    }
    rt.push_batch(&stream).unwrap();
    rt.quiesce().unwrap();

    for (id, solo) in ids.into_iter().zip(&solo_bases) {
        let report = rt.cancel(id).unwrap();
        assert!(!solo.is_empty(), "reference run must archive something");
        assert_eq!(
            report.base.len(),
            solo.len(),
            "{id}: archived pattern count differs from solo run"
        );
        for (concurrent, reference) in report.base.iter().zip(solo.iter()) {
            assert_eq!(
                concurrent.window, reference.window,
                "{id}: window id differs"
            );
            assert_eq!(
                packed::encode(&concurrent.sgs),
                packed::encode(&reference.sgs),
                "{id}: archived summary bytes differ in window {}",
                reference.window
            );
        }
    }

    // The shared 2-d history holds the union of all three archives.
    let total: usize = solo_bases.iter().map(|b| b.len()).sum();
    assert_eq!(rt.history(2).unwrap().read().len(), total);
}
