//! The registry of concurrent continuous queries: identity, lifecycle
//! state, and per-query execution statistics.
//!
//! Statistics are written by the query's executor task after every
//! processed batch and read by callers through [`Runtime::stats`]; the
//! shared cell is a vendored-`parking_lot` [`RwLock`] so a stats read
//! never blocks ingestion for longer than one batch update.
//!
//! [`Runtime::stats`]: crate::runtime::Runtime::stats

use std::sync::Arc;

use parking_lot::RwLock;

/// Stable handle of a registered continuous query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u64);

/// Opaque handle of one registration session (a network connection, a
/// notebook, ...) for **owner-scoped registry views**: queries submitted
/// through a [`Runtime::session`] handle are tagged with their session's
/// `OwnerId`, and the handle's listings, feeds, and lifecycle methods
/// see only that owner's queries. Mint one per session with
/// [`Runtime::new_owner`].
///
/// [`Runtime::session`]: crate::runtime::Runtime::session
/// [`Runtime::new_owner`]: crate::runtime::Runtime::new_owner
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OwnerId(pub u64);

impl core::fmt::Display for OwnerId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl core::fmt::Display for QueryId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// Lifecycle state of a registered query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryState {
    /// Receiving points and emitting windows.
    Running,
    /// Alive but not receiving points: tuples ingested while paused are
    /// skipped for this query (a gap in its stream), not buffered.
    Paused,
    /// Stopped by [`Runtime::cancel`]; final stats remain readable.
    ///
    /// [`Runtime::cancel`]: crate::runtime::Runtime::cancel
    Cancelled,
    /// The worker hit an unrecoverable error (e.g. a dimension mismatch);
    /// subsequent points are dropped. See [`QueryStats::error`].
    Failed,
}

/// Execution statistics of one continuous query.
#[derive(Clone, Debug, Default)]
pub struct QueryStats {
    /// Points this query has processed.
    pub points: u64,
    /// Windows emitted.
    pub windows: u64,
    /// Clusters extracted across all emitted windows.
    pub clusters: u64,
    /// Completed windows discarded unread by the
    /// [`OutputPolicy::DropOldest`] flow-control policy (always 0 under
    /// the other policies and in callback mode).
    ///
    /// [`OutputPolicy::DropOldest`]: crate::output::OutputPolicy::DropOldest
    pub windows_dropped: u64,
    /// Clusters admitted to this query's pattern base.
    pub archived: u64,
    /// Packed bytes of this query's archived summaries.
    pub archive_bytes: usize,
    /// Worker-side processing time (extraction + summarization +
    /// archival), in nanoseconds. Excludes time spent waiting for input.
    pub busy_nanos: u64,
    /// The error message that moved the query to
    /// [`QueryState::Failed`], if any.
    pub error: Option<String>,
}

impl QueryStats {
    /// Mean processing latency per emitted window, in milliseconds.
    pub fn avg_window_ms(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.busy_nanos as f64 / 1e6 / self.windows as f64
        }
    }

    /// Mean clusters per emitted window.
    pub fn clusters_per_window(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.clusters as f64 / self.windows as f64
        }
    }
}

/// State + stats cell shared between a query's executor task and the
/// runtime front-end.
#[derive(Debug)]
pub(crate) struct Status {
    pub state: QueryState,
    pub stats: QueryStats,
}

pub(crate) type SharedStatus = Arc<RwLock<Status>>;

pub(crate) fn new_shared_status() -> SharedStatus {
    Arc::new(RwLock::new(Status {
        state: QueryState::Running,
        stats: QueryStats::default(),
    }))
}

/// A point-in-time public view of one registered query.
#[derive(Clone, Debug)]
pub struct QueryDescriptor {
    /// The query's handle.
    pub id: QueryId,
    /// The statement text (canonical rendering of the submitted AST).
    pub text: String,
    /// Lifecycle state at the time of the snapshot.
    pub state: QueryState,
    /// Statistics at the time of the snapshot.
    pub stats: QueryStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_derived_rates() {
        let mut s = QueryStats::default();
        assert_eq!(s.avg_window_ms(), 0.0);
        assert_eq!(s.clusters_per_window(), 0.0);
        s.windows = 4;
        s.clusters = 10;
        s.busy_nanos = 8_000_000;
        assert!((s.avg_window_ms() - 2.0).abs() < 1e-12);
        assert!((s.clusters_per_window() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn query_id_displays_compactly() {
        assert_eq!(QueryId(3).to_string(), "Q3");
    }

    #[test]
    fn status_defaults_to_running() {
        let status = new_shared_status();
        assert_eq!(status.read().state, QueryState::Running);
    }
}
