//! Minimal JSON emission for the harness binaries' `--json` mode.
//!
//! The workspace builds offline with no serde (`DESIGN.md` §4), so the
//! machine-readable bench reports are rendered by this tiny builder: flat
//! objects of strings/integers/floats plus one level of object arrays —
//! exactly what a CI artifact consumer needs, nothing more.

/// Builder for one JSON object.
#[derive(Clone, Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// Empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push((key.to_string(), format!("\"{}\"", escape(value))));
        self
    }

    /// Add an integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Add a signed integer field.
    pub fn i64(mut self, key: &str, value: i64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Add a float field (non-finite values render as `null`).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value:.3}")
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Add an array-of-objects field.
    pub fn array(mut self, key: &str, items: &[JsonObject]) -> Self {
        let inner: Vec<String> = items.iter().map(JsonObject::render).collect();
        self.fields
            .push((key.to_string(), format!("[{}]", inner.join(","))));
        self
    }

    /// Render to a JSON string.
    pub fn render(&self) -> String {
        let inner: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", escape(k), v))
            .collect();
        format!("{{{}}}", inner.join(","))
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_report() {
        let rows = vec![
            JsonObject::new().u64("shards", 1).f64("rate", 1234.5678),
            JsonObject::new().u64("shards", 2).f64("rate", f64::NAN),
        ];
        let report = JsonObject::new()
            .str("bench", "shard_scaling")
            .str("note", "line\nbreak \"quoted\"")
            .array("rows", &rows)
            .render();
        assert_eq!(
            report,
            "{\"bench\":\"shard_scaling\",\
             \"note\":\"line\\nbreak \\\"quoted\\\"\",\
             \"rows\":[{\"shards\":1,\"rate\":1234.568},{\"shards\":2,\"rate\":null}]}"
        );
    }
}
