//! # sgs-query
//!
//! A front-end for the two analytical query templates the paper defines
//! (Figures 2 and 3), in the CQL-flavored surface syntax used throughout
//! the text:
//!
//! ```text
//! DETECT DensityBasedClusters f+s FROM stream
//! USING theta_range = 0.1 AND theta_cnt = 8
//! IN Windows WITH win = 10000 AND slide = 1000
//! ```
//!
//! ```text
//! GIVEN DensityBasedClusters Ci
//! SELECT DensityBasedClusters Cj FROM History
//! WHERE Distance(Ci, Cj) <= 0.2
//! USING ps = 0 AND weights = (0.25, 0.25, 0.25, 0.25)
//! ```
//!
//! [`parse_detect`] yields a [`DetectQuery`] convertible into a
//! [`sgs_core::ClusterQuery`] (plus the stream's dimensionality, which is
//! a property of the source, not the query); [`parse_match`] yields a
//! [`MatchQueryAst`] convertible into a
//! [`sgs_matching::MatchConfig`]. The final `USING` clause of the match
//! template is our extension — the paper leaves metric customization to an
//! unspecified API, and this is that API.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{DetectQuery, MatchQueryAst, OutputFormat};
pub use parser::{parse_any, parse_detect, parse_match, ParseError, QueryAst};
