//! The window engine: drives a clustering algorithm over a stream.
//!
//! The engine owns nothing but the window bookkeeping. Algorithms implement
//! [`WindowConsumer`]; the engine calls
//! [`insert`](WindowConsumer::insert) for every arriving point (tagged with
//! its pre-computed expiry window, Obs. 5.2) and
//! [`slide`](WindowConsumer::slide) whenever a window completes, collecting
//! the per-window outputs.

use crate::lifespan::expires_at;
use sgs_core::{Error, Point, PointId, Result, WindowId, WindowKind, WindowSpec};

/// A sliding-window clustering algorithm, driven by [`WindowEngine`].
pub trait WindowConsumer {
    /// Per-window output (e.g. the set of extracted clusters).
    type Output;

    /// A new point arrived. `expires_at` is the first window in which the
    /// point no longer participates; the point participates in every window
    /// from the engine's current window up to `expires_at - 1`.
    fn insert(&mut self, id: PointId, point: &Point, expires_at: WindowId);

    /// A run of points that all arrive between two window boundaries (no
    /// slide occurs inside the batch), in arrival order. The default
    /// implementation loops over [`insert`](Self::insert); consumers whose
    /// final state is insertion-order-independent within a window — like
    /// the sharded C-SGS extractor — override this to process the run in
    /// parallel (as fork-join phases on the shared scheduler pool; see
    /// `DESIGN.md` §8).
    fn insert_batch(&mut self, items: &[(PointId, Point, WindowId)]) {
        for (id, point, expires_at) in items {
            self.insert(*id, point, *expires_at);
        }
    }

    /// Window `completed` is full: produce its output. After this call the
    /// engine considers `completed + 1` the current window; points with
    /// `expires_at == completed + 1` are gone from it.
    fn slide(&mut self, completed: WindowId) -> Self::Output;
}

/// Drives a [`WindowConsumer`] over a point stream with periodic sliding
/// windows (count- or time-based).
#[derive(Debug)]
pub struct WindowEngine {
    spec: WindowSpec,
    dim: usize,
    /// Next point id / arrival sequence number.
    seq: u32,
    /// Smallest not-yet-completed window.
    current: u64,
    /// Last accepted timestamp (time-based ordering check).
    last_ts: u64,
    started: bool,
}

impl WindowEngine {
    /// New engine for a `dim`-dimensional stream.
    pub fn new(spec: WindowSpec, dim: usize) -> Self {
        WindowEngine {
            spec,
            dim,
            seq: 0,
            current: 0,
            last_ts: 0,
            started: false,
        }
    }

    /// The smallest window that has not yet completed.
    #[inline]
    pub fn current_window(&self) -> WindowId {
        WindowId(self.current)
    }

    /// Number of points accepted so far.
    #[inline]
    pub fn accepted(&self) -> u64 {
        self.seq as u64
    }

    /// The window spec this engine runs.
    #[inline]
    pub fn spec(&self) -> &WindowSpec {
        &self.spec
    }

    /// Logical time of a point under the configured window kind.
    #[inline]
    fn logical_time(&self, p: &Point) -> u64 {
        match self.spec.kind {
            WindowKind::Count => self.seq as u64,
            WindowKind::Time => p.ts,
        }
    }

    /// Feed one point. Completes any windows that close *before* this point
    /// (time-based streams can close several at once), pushing their outputs
    /// into `outputs`, then inserts the point into the consumer.
    pub fn push<C: WindowConsumer>(
        &mut self,
        point: Point,
        consumer: &mut C,
        outputs: &mut Vec<(WindowId, C::Output)>,
    ) -> Result<PointId> {
        if point.dim() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                got: point.dim(),
            });
        }
        if self.spec.kind == WindowKind::Time {
            if self.started && point.ts < self.last_ts {
                return Err(Error::OutOfOrderTimestamp {
                    last: self.last_ts,
                    got: point.ts,
                });
            }
            self.last_ts = point.ts;
            self.started = true;
        }
        let t = self.logical_time(&point);
        // Complete every window that ends at or before this point's time.
        while t >= self.spec.window_end(self.current) {
            let out = consumer.slide(WindowId(self.current));
            outputs.push((WindowId(self.current), out));
            self.current += 1;
        }
        let id = PointId(self.seq);
        self.seq += 1;
        consumer.insert(id, &point, expires_at(&self.spec, t));
        Ok(id)
    }

    /// Feed a batch of points, amortizing the per-point call overhead of
    /// [`push`](Self::push). Returns the number of points accepted.
    ///
    /// The batch is cut into *segments* — maximal runs of points between
    /// two window boundaries — and each segment is handed to the consumer
    /// in one [`insert_batch`](WindowConsumer::insert_batch) call, which
    /// is what lets sharded consumers parallelize within a segment. The
    /// sequence of consumer `insert`/`slide` effects — and thus every
    /// output — is **identical** to pushing the same points one at a
    /// time.
    ///
    /// On error (dimension mismatch, out-of-order timestamp), points
    /// before the failing one are already inserted and any windows they
    /// completed are already in `outputs`.
    pub fn push_batch<C: WindowConsumer>(
        &mut self,
        points: impl IntoIterator<Item = Point>,
        consumer: &mut C,
        outputs: &mut Vec<(WindowId, C::Output)>,
    ) -> Result<u64> {
        let mut accepted = 0u64;
        let time_based = self.spec.kind == WindowKind::Time;
        let mut boundary = self.spec.window_end(self.current);
        let mut segment: Vec<(PointId, Point, WindowId)> = Vec::new();
        // On any error, points before the failing one must be inserted,
        // exactly as if pushed one at a time (their slides already ran).
        macro_rules! fail {
            ($seg:expr, $err:expr) => {{
                if !$seg.is_empty() {
                    consumer.insert_batch(&$seg);
                }
                return Err($err);
            }};
        }
        for point in points {
            if point.dim() != self.dim {
                fail!(
                    segment,
                    Error::DimensionMismatch {
                        expected: self.dim,
                        got: point.dim(),
                    }
                );
            }
            if time_based {
                if self.started && point.ts < self.last_ts {
                    fail!(
                        segment,
                        Error::OutOfOrderTimestamp {
                            last: self.last_ts,
                            got: point.ts,
                        }
                    );
                }
                self.last_ts = point.ts;
                self.started = true;
            }
            let t = self.logical_time(&point);
            if t >= boundary {
                if !segment.is_empty() {
                    consumer.insert_batch(&segment);
                    segment.clear();
                }
                while t >= boundary {
                    let out = consumer.slide(WindowId(self.current));
                    outputs.push((WindowId(self.current), out));
                    self.current += 1;
                    boundary = self.spec.window_end(self.current);
                }
            }
            let id = PointId(self.seq);
            self.seq += 1;
            segment.push((id, point, expires_at(&self.spec, t)));
            accepted += 1;
        }
        if !segment.is_empty() {
            consumer.insert_batch(&segment);
        }
        Ok(accepted)
    }

    /// Force-complete the current window (end-of-stream flush). Returns the
    /// output of the window that was closed.
    pub fn flush<C: WindowConsumer>(&mut self, consumer: &mut C) -> (WindowId, C::Output) {
        let w = WindowId(self.current);
        let out = consumer.slide(w);
        self.current += 1;
        (w, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test consumer that records the points alive in each window.
    #[derive(Default)]
    struct Recorder {
        alive: Vec<(PointId, WindowId)>,
    }

    impl WindowConsumer for Recorder {
        type Output = Vec<PointId>;

        fn insert(&mut self, id: PointId, _point: &Point, expires_at: WindowId) {
            self.alive.push((id, expires_at));
        }

        fn slide(&mut self, completed: WindowId) -> Vec<PointId> {
            let out = self
                .alive
                .iter()
                .filter(|(_, e)| completed < *e)
                .map(|(id, _)| *id)
                .collect();
            self.alive.retain(|(_, e)| e.0 > completed.0 + 1);
            out
        }
    }

    fn pt(x: f64, ts: u64) -> Point {
        Point::new(vec![x], ts)
    }

    #[test]
    fn count_windows_complete_on_schedule() {
        let spec = WindowSpec::count(4, 2).unwrap();
        let mut eng = WindowEngine::new(spec, 1);
        let mut rec = Recorder::default();
        let mut outs = Vec::new();
        for i in 0..8 {
            eng.push(pt(i as f64, 0), &mut rec, &mut outs).unwrap();
        }
        // Windows complete when tuple 4 and tuple 6 arrive.
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].0, WindowId(0));
        assert_eq!(
            outs[0].1,
            vec![PointId(0), PointId(1), PointId(2), PointId(3)]
        );
        assert_eq!(outs[1].0, WindowId(1));
        assert_eq!(
            outs[1].1,
            vec![PointId(2), PointId(3), PointId(4), PointId(5)]
        );
    }

    #[test]
    fn flush_completes_partial_window() {
        let spec = WindowSpec::count(4, 2).unwrap();
        let mut eng = WindowEngine::new(spec, 1);
        let mut rec = Recorder::default();
        let mut outs = Vec::new();
        for i in 0..5 {
            eng.push(pt(i as f64, 0), &mut rec, &mut outs).unwrap();
        }
        assert_eq!(outs.len(), 1);
        let (w, members) = eng.flush(&mut rec);
        assert_eq!(w, WindowId(1));
        assert_eq!(members, vec![PointId(2), PointId(3), PointId(4)]);
    }

    #[test]
    fn time_windows_can_close_many_at_once() {
        let spec = WindowSpec::time(10, 5).unwrap();
        let mut eng = WindowEngine::new(spec, 1);
        let mut rec = Recorder::default();
        let mut outs = Vec::new();
        eng.push(pt(0.0, 1), &mut rec, &mut outs).unwrap();
        assert!(outs.is_empty());
        // ts=42 closes windows 0..=6 (ends 10,15,...,40 ≤ 42 < 45)
        eng.push(pt(1.0, 42), &mut rec, &mut outs).unwrap();
        assert_eq!(outs.len(), 7);
        assert_eq!(outs[0].0, WindowId(0));
        assert_eq!(outs[0].1, vec![PointId(0)]);
        // later windows no longer contain p0 (its ts=1 expires after window 0)
        assert!(outs[1].1.is_empty());
    }

    #[test]
    fn rejects_wrong_dimension() {
        let spec = WindowSpec::count(4, 2).unwrap();
        let mut eng = WindowEngine::new(spec, 2);
        let mut rec = Recorder::default();
        let mut outs = Vec::new();
        let err = eng.push(pt(0.0, 0), &mut rec, &mut outs).unwrap_err();
        assert!(matches!(
            err,
            Error::DimensionMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn rejects_time_regression() {
        let spec = WindowSpec::time(10, 5).unwrap();
        let mut eng = WindowEngine::new(spec, 1);
        let mut rec = Recorder::default();
        let mut outs = Vec::new();
        eng.push(pt(0.0, 100), &mut rec, &mut outs).unwrap();
        let err = eng.push(pt(0.0, 99), &mut rec, &mut outs).unwrap_err();
        assert!(matches!(err, Error::OutOfOrderTimestamp { .. }));
    }

    #[test]
    fn push_batch_equals_per_point_push() {
        for spec in [
            WindowSpec::count(6, 2).unwrap(),
            WindowSpec::time(10, 5).unwrap(),
        ] {
            let points: Vec<Point> = (0..50).map(|i| pt(i as f64, i * 2)).collect();

            let mut solo_eng = WindowEngine::new(spec, 1);
            let mut solo_rec = Recorder::default();
            let mut solo_outs = Vec::new();
            for p in points.clone() {
                solo_eng.push(p, &mut solo_rec, &mut solo_outs).unwrap();
            }

            let mut batch_eng = WindowEngine::new(spec, 1);
            let mut batch_rec = Recorder::default();
            let mut batch_outs = Vec::new();
            let mut fed = 0u64;
            for chunk in points.chunks(7) {
                fed += batch_eng
                    .push_batch(chunk.to_vec(), &mut batch_rec, &mut batch_outs)
                    .unwrap();
            }

            assert_eq!(fed, points.len() as u64);
            assert_eq!(solo_outs, batch_outs);
            assert_eq!(solo_eng.current_window(), batch_eng.current_window());
            assert_eq!(solo_eng.accepted(), batch_eng.accepted());
        }
    }

    #[test]
    fn insert_batch_segments_never_span_boundaries() {
        /// Consumer that records the id runs handed to `insert_batch`.
        #[derive(Default)]
        struct Segments {
            runs: Vec<Vec<u32>>,
            slides: u64,
        }
        impl WindowConsumer for Segments {
            type Output = ();
            fn insert(&mut self, id: PointId, _p: &Point, _e: WindowId) {
                self.runs.push(vec![id.0]);
            }
            fn insert_batch(&mut self, items: &[(PointId, Point, WindowId)]) {
                self.runs
                    .push(items.iter().map(|(id, _, _)| id.0).collect());
            }
            fn slide(&mut self, _completed: WindowId) {
                self.slides += 1;
            }
        }
        let spec = WindowSpec::count(6, 3).unwrap();
        let mut eng = WindowEngine::new(spec, 1);
        let mut seg = Segments::default();
        let mut outs = Vec::new();
        let points: Vec<Point> = (0..14).map(|i| pt(i as f64, 0)).collect();
        eng.push_batch(points, &mut seg, &mut outs).unwrap();
        // Boundaries fall at t = 6, 9, 12 → runs 0..=5, 6..=8, 9..=11, 12..=13.
        let expect: Vec<Vec<u32>> = vec![
            (0..6).collect(),
            (6..9).collect(),
            (9..12).collect(),
            (12..14).collect(),
        ];
        assert_eq!(seg.runs, expect);
        assert_eq!(seg.slides, 3);
    }

    #[test]
    fn push_batch_rejects_wrong_dimension_mid_batch() {
        let spec = WindowSpec::count(4, 2).unwrap();
        let mut eng = WindowEngine::new(spec, 1);
        let mut rec = Recorder::default();
        let mut outs = Vec::new();
        let batch = vec![pt(0.0, 0), pt(1.0, 0), Point::new(vec![0.0, 0.0], 0)];
        let err = eng.push_batch(batch, &mut rec, &mut outs).unwrap_err();
        assert!(matches!(
            err,
            Error::DimensionMismatch {
                expected: 1,
                got: 2
            }
        ));
        // The two good points before the failure were accepted.
        assert_eq!(eng.accepted(), 2);
    }

    #[test]
    fn push_batch_rejects_time_regression_mid_batch() {
        let spec = WindowSpec::time(10, 5).unwrap();
        let mut eng = WindowEngine::new(spec, 1);
        let mut rec = Recorder::default();
        let mut outs = Vec::new();
        let batch = vec![pt(0.0, 3), pt(1.0, 7), pt(2.0, 6)];
        let err = eng.push_batch(batch, &mut rec, &mut outs).unwrap_err();
        assert!(matches!(
            err,
            Error::OutOfOrderTimestamp { last: 7, got: 6 }
        ));
        // The two in-order points before the failure were accepted.
        assert_eq!(eng.accepted(), 2);
    }

    #[test]
    fn count_expiry_matches_engine_window() {
        // Every point must be reported alive in exactly win/slide windows
        // once the stream is in steady state.
        let spec = WindowSpec::count(6, 2).unwrap();
        let mut eng = WindowEngine::new(spec, 1);
        let mut rec = Recorder::default();
        let mut outs = Vec::new();
        for i in 0..30 {
            eng.push(pt(i as f64, 0), &mut rec, &mut outs).unwrap();
        }
        let mut appearances: std::collections::HashMap<PointId, u32> = Default::default();
        for (_, members) in &outs {
            for m in members {
                *appearances.entry(*m).or_default() += 1;
            }
        }
        // Points 0..=21 have fully completed lifecycles within the emitted
        // windows (last emitted window covers tuples up to 27).
        for id in 4..=21u32 {
            assert_eq!(appearances[&PointId(id)], 3, "point {id}");
        }
    }
}
