//! Zero-dependency metrics + tracing core (`DESIGN.md` §11).
//!
//! Every layer of the system registers its instruments here at
//! construction time and holds typed handles ([`Counter`], [`Gauge`],
//! [`Histogram`]) — recording is a handful of relaxed atomic operations
//! on the hot path and **a single relaxed load** when metrics are
//! disabled (the default). The process-wide [`Registry`] is the one
//! source every exposition surface reads: the `MetricsReq` wire frame,
//! the `--metrics-addr` Prometheus text endpoint, and the bench
//! harnesses' `--json` snapshots.
//!
//! Metric names follow `sgs_<layer>_<name>` with Prometheus-style inline
//! labels (`sgs_exec_tasks_total{worker="0"}`); see [`labeled`].
//!
//! Enabling is **monotonic**: [`enable`] flips a process-global flag
//! that is never cleared, so concurrently running queries and tests can
//! race on it safely (recording is always correct; only the no-op
//! fast-path is at stake).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Process-global enable flag. Off by default; flipped (once) by
/// `RuntimeConfig::metrics` or the server/bench entry points.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn metric recording on for the whole process. One-way: there is no
/// `disable`, so instrumented code may cache the answer-shaped fast path
/// without ever observing a flip back.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Whether metric recording is on. A single relaxed load — the entire
/// cost of instrumentation when metrics are disabled.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Count one event. No-op while metrics are disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Count `n` events. No-op while metrics are disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (queue depth, open sessions, ...).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Move the level by `delta` (negative to decrease). No-op while
    /// metrics are disabled.
    #[inline]
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Increase the level by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrease the level by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Overwrite the level. No-op while metrics are disabled.
    #[inline]
    pub fn set(&self, value: i64) {
        if enabled() {
            self.0.store(value, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per power of two of the recorded
/// value, so bucket `i` spans `[2^i, 2^(i+1))` (bucket 0 also catches 0).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log-bucketed latency histogram with a lock-free record path.
///
/// Values (nanoseconds by convention) land in power-of-two buckets, so
/// quantile estimates carry at most one octave of error — plenty for
/// "did p99 fsync latency double", at 64 words of memory and zero locks.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index of `value`: floor(log2(value)), with 0 mapping to
/// bucket 0.
#[inline]
fn bucket_of(value: u64) -> usize {
    (63 - value.max(1).leading_zeros()) as usize
}

impl Histogram {
    /// Record one observation. No-op while metrics are disabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record the nanoseconds elapsed since `start`.
    #[inline]
    pub fn record_since(&self, start: Instant) {
        if enabled() {
            self.record(start.elapsed().as_nanos() as u64);
        }
    }

    /// Point-in-time snapshot with estimated quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let max = self.max.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the q-quantile observation, 1-based.
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    // Report the bucket's upper bound, clipped to the
                    // largest value actually observed.
                    let upper = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
                    return upper.min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max,
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }
}

/// A point-in-time view of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Estimated median (upper bound of its power-of-two bucket).
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A scope timer: records the elapsed nanoseconds into a histogram when
/// dropped. Constructed through [`span!`] or [`SpanGuard::new`]; when
/// metrics are disabled it never reads the clock and drops for free.
#[must_use = "a span guard records on drop — binding it to _ discards the measurement"]
pub struct SpanGuard<'a> {
    histogram: &'a Histogram,
    start: Option<Instant>,
}

impl<'a> SpanGuard<'a> {
    /// Start timing into `histogram` (a no-op guard when disabled).
    #[inline]
    pub fn new(histogram: &'a Histogram) -> SpanGuard<'a> {
        SpanGuard {
            histogram,
            start: enabled().then(Instant::now),
        }
    }
}

impl Drop for SpanGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.histogram.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Time the enclosing scope into the named histogram:
///
/// ```
/// # sgs_obs::enable();
/// {
///     let _span = sgs_obs::span!("sgs_example_phase_nanos");
///     // ... timed work ...
/// }
/// assert_eq!(
///     sgs_obs::registry()
///         .histogram("sgs_example_phase_nanos")
///         .snapshot()
///         .count,
///     1
/// );
/// ```
///
/// The histogram handle is resolved once per call site and cached in a
/// static, so repeated entries cost no registry lookup.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static SPAN_HISTOGRAM: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        $crate::SpanGuard::new(SPAN_HISTOGRAM.get_or_init(|| $crate::registry().histogram($name)))
    }};
}

/// Render `name{label="value",...}` — the inline-label naming scheme the
/// registry keys on (`DESIGN.md` §11).
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{name}{{{}}}", inner.join(","))
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The value of one metric in a [`Registry::snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// A [`Counter`] reading.
    Counter(u64),
    /// A [`Gauge`] reading.
    Gauge(i64),
    /// A [`Histogram`] snapshot.
    Histogram(HistogramSnapshot),
}

/// One named metric in a [`Registry::snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// Full display name, labels inline.
    pub name: String,
    /// The reading at snapshot time.
    pub value: MetricValue,
}

/// The process-wide metric registry: a name → instrument map that every
/// exposition surface snapshots. Get-or-register is idempotent — two
/// sites asking for the same name share one instrument — but asking for
/// the same name with a different type panics (a wiring bug, not a
/// runtime condition).
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// The map is consistent at every panic point (type-confusion panics
    /// happen after any insertion), so a poisoned lock is still usable.
    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The process-wide [`Registry`].
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

impl Registry {
    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.lock();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())));
        match metric {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.lock();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())));
        match metric {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Get or register the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self.lock();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())));
        match metric {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Read every registered metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let metrics = self.lock();
        metrics
            .iter()
            .map(|(name, metric)| MetricSnapshot {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }

    /// Render the registry in the Prometheus text exposition format
    /// (version 0.0.4). Counters and gauges render directly; histograms
    /// render as summaries (`{quantile="…"}` series plus `_sum`,
    /// `_count`, and a `_max` gauge).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_base = String::new();
        for MetricSnapshot { name, value } in self.snapshot() {
            let (base, labels) = split_labels(&name);
            match value {
                MetricValue::Counter(v) => {
                    type_line(&mut out, &mut last_base, base, "counter");
                    out.push_str(&format!("{name} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    type_line(&mut out, &mut last_base, base, "gauge");
                    out.push_str(&format!("{name} {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    type_line(&mut out, &mut last_base, base, "summary");
                    for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                        let qlabel = format!("quantile=\"{q}\"");
                        let series = match labels {
                            Some(l) => format!("{base}{{{l},{qlabel}}}"),
                            None => format!("{base}{{{qlabel}}}"),
                        };
                        out.push_str(&format!("{series} {v}\n"));
                    }
                    let suffixed = |suffix: &str| match labels {
                        Some(l) => format!("{base}{suffix}{{{l}}}"),
                        None => format!("{base}{suffix}"),
                    };
                    out.push_str(&format!("{} {}\n", suffixed("_sum"), h.sum));
                    out.push_str(&format!("{} {}\n", suffixed("_count"), h.count));
                    out.push_str(&format!("{} {}\n", suffixed("_max"), h.max));
                }
            }
        }
        out
    }
}

/// Split `name{labels}` into `(name, Some(labels))`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((base, rest)) => (base, Some(rest.trim_end_matches('}'))),
        None => (name, None),
    }
}

/// Emit one `# TYPE` comment per base name (label variants share it).
fn type_line(out: &mut String, last_base: &mut String, base: &str, kind: &str) {
    if last_base != base {
        out.push_str(&format!("# TYPE {base} {kind}\n"));
        *last_base = base.to_string();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_floor_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn histogram_quantiles_track_the_distribution() {
        enable();
        let h = Histogram::default();
        // 90 fast observations around 1µs, 10 slow ones around 1ms.
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 1_000_000);
        // p50 sits in the 1µs bucket [512, 1024); p99 in the 1ms bucket.
        assert!(s.p50 >= 1_000 && s.p50 < 2_048, "p50 = {}", s.p50);
        assert!(s.p95 >= 1_000_000, "p95 = {}", s.p95);
        assert_eq!(s.p99, 1_000_000, "p99 clips to the observed max");
        assert!((s.mean() - (90.0 * 1e3 + 10.0 * 1e6) / 100.0).abs() < 1.0);
    }

    #[test]
    fn registry_get_or_register_shares_instruments() {
        enable();
        let a = registry().counter("sgs_test_shared_total");
        let b = registry().counter("sgs_test_shared_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(registry()
            .snapshot()
            .iter()
            .any(|m| m.name == "sgs_test_shared_total" && m.value == MetricValue::Counter(3)));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_type_confusion() {
        registry().counter("sgs_test_confused");
        registry().gauge("sgs_test_confused");
    }

    #[test]
    fn labeled_renders_prometheus_style() {
        assert_eq!(labeled("sgs_x_total", &[]), "sgs_x_total");
        assert_eq!(
            labeled("sgs_x_total", &[("worker", "3"), ("prio", "high")]),
            "sgs_x_total{worker=\"3\",prio=\"high\"}"
        );
        assert_eq!(
            split_labels("sgs_x_total{worker=\"3\"}"),
            ("sgs_x_total", Some("worker=\"3\""))
        );
    }

    #[test]
    fn prometheus_rendering_covers_all_kinds() {
        enable();
        registry().counter("sgs_test_render_total").add(7);
        registry().gauge("sgs_test_render_depth").set(-2);
        registry()
            .histogram("sgs_test_render_nanos{phase=\"x\"}")
            .record(100);
        let text = registry().render_prometheus();
        assert!(text.contains("# TYPE sgs_test_render_total counter\n"));
        assert!(text.contains("sgs_test_render_total 7\n"));
        assert!(text.contains("# TYPE sgs_test_render_depth gauge\n"));
        assert!(text.contains("sgs_test_render_depth -2\n"));
        assert!(text.contains("# TYPE sgs_test_render_nanos summary\n"));
        assert!(text.contains("sgs_test_render_nanos{phase=\"x\",quantile=\"0.5\"} "));
        assert!(text.contains("sgs_test_render_nanos_count{phase=\"x\"} 1\n"));
        assert!(text.contains("sgs_test_render_nanos_sum{phase=\"x\"} 100\n"));
        assert!(text.contains("sgs_test_render_nanos_max{phase=\"x\"} 100\n"));
    }

    #[test]
    fn span_macro_records_into_its_histogram() {
        enable();
        for _ in 0..3 {
            let _span = span!("sgs_test_span_nanos");
        }
        let snapshot = registry().histogram("sgs_test_span_nanos").snapshot();
        assert_eq!(snapshot.count, 3);
    }

    #[test]
    fn gauge_moves_both_ways() {
        enable();
        let g = Gauge::default();
        g.inc();
        g.add(5);
        g.dec();
        assert_eq!(g.get(), 5);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }
}
