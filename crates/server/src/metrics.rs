//! Server-layer instrumentation (`DESIGN.md` §11): session and frame
//! accounting, reactor activity, transport byte counts, and the optional
//! HTTP scrape endpoint serving the Prometheus text exposition.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;

use sgs_obs::{labeled, registry, Counter, Gauge, Histogram};

/// Request-kind byte → stable label value for
/// `sgs_server_frames_total{kind=...}`.
fn kind_name(kind: u8) -> &'static str {
    match kind {
        0x01 => "hello",
        0x02 => "submit",
        0x03 => "feed",
        0x04 => "poll",
        0x05 => "stats",
        0x06 => "list",
        0x07 => "pause",
        0x08 => "resume",
        0x09 => "cancel",
        0x0A => "bind",
        0x0B => "quiesce",
        0x0C => "goodbye",
        0x0D => "metrics",
        0x0E => "subscribe",
        0x0F => "unsubscribe",
        _ => "other",
    }
}

/// Typed handles into the process registry, resolved once at server
/// construction so per-frame accounting is a relaxed atomic, not a map
/// lookup.
pub(crate) struct ServerMetrics {
    /// Sessions currently connected.
    pub sessions: Arc<Gauge>,
    /// Sessions accepted since start.
    pub sessions_total: Arc<Counter>,
    /// Request frames dispatched, by kind (index = kind byte; `[0]` is
    /// the `other` fallback for unknown kinds).
    frames: Vec<Arc<Counter>>,
    /// Transport bytes read off client sockets.
    pub bytes_in: Arc<Counter>,
    /// Transport bytes written to client sockets.
    pub bytes_out: Arc<Counter>,
    /// Time one `Feed` dispatch spends blocked pushing into the bounded
    /// input queues — the server-side view of backpressure.
    pub feed_block_nanos: Arc<Histogram>,
    /// Sessions closed because no complete request arrived within the
    /// configured idle deadline.
    pub idle_timeouts: Arc<Counter>,
    /// Requests refused with `QuotaExceeded` (per-owner admission
    /// control).
    pub quota_rejections: Arc<Counter>,
    /// `GoAway` frames sent to sessions during a drain.
    pub goaways: Arc<Counter>,
    /// Graceful drains initiated ([`ServerHandle::drain`]).
    ///
    /// [`ServerHandle::drain`]: crate::ServerHandle::drain
    pub drains: Arc<Counter>,
    /// Vanished peers detected by the reactor's hangup readiness while a
    /// request was executing (each one force-released the owner's output
    /// buffers so a wedged `Feed` unblocks).
    pub disconnect_reaps: Arc<Counter>,
    /// Malformed frames received (sessions ended with a typed Protocol
    /// error rather than a hang or a panic).
    pub wire_errors: Arc<Counter>,
    /// Times the reactor's readiness wait returned (socket readiness, a
    /// waker byte from a dispatch completion or an output-buffer notify,
    /// or a timeout tick).
    pub reactor_wakeups: Arc<Counter>,
    /// Windows delivered as unsolicited pushed `Windows` frames to
    /// subscribed sessions.
    pub pushed_windows: Arc<Counter>,
    /// `Hello` frames refused for a missing or unknown auth token.
    pub auth_failures: Arc<Counter>,
    /// Query subscriptions currently active across all sessions.
    pub subscriptions: Arc<Gauge>,
}

impl ServerMetrics {
    pub(crate) fn new() -> ServerMetrics {
        let r = registry();
        let frames = (0u8..=0x0F)
            .map(|k| {
                r.counter(&labeled(
                    "sgs_server_frames_total",
                    &[("kind", kind_name(if k == 0 { 0xFF } else { k }))],
                ))
            })
            .collect();
        ServerMetrics {
            sessions: r.gauge("sgs_server_sessions"),
            sessions_total: r.counter("sgs_server_sessions_total"),
            frames,
            bytes_in: r.counter("sgs_server_bytes_in_total"),
            bytes_out: r.counter("sgs_server_bytes_out_total"),
            feed_block_nanos: r.histogram("sgs_server_feed_block_nanos"),
            idle_timeouts: r.counter("sgs_server_idle_timeouts_total"),
            quota_rejections: r.counter("sgs_server_quota_rejections_total"),
            goaways: r.counter("sgs_server_goaways_total"),
            drains: r.counter("sgs_server_drains_total"),
            disconnect_reaps: r.counter("sgs_server_disconnect_reaps_total"),
            wire_errors: r.counter("sgs_server_wire_errors_total"),
            reactor_wakeups: r.counter("sgs_server_reactor_wakeups_total"),
            pushed_windows: r.counter("sgs_server_pushed_windows_total"),
            auth_failures: r.counter("sgs_server_auth_failures_total"),
            subscriptions: r.gauge("sgs_server_subscriptions"),
        }
    }

    /// Count one dispatched request frame by its kind byte.
    pub(crate) fn count_frame(&self, kind: u8) {
        let idx = if (kind as usize) < self.frames.len() {
            kind as usize
        } else {
            0
        };
        self.frames[idx].inc();
    }
}

// ---------------------------------------------------------------------------
// HTTP scrape endpoint
// ---------------------------------------------------------------------------

/// Bind `addr` and serve the process metric registry as Prometheus text
/// exposition (format 0.0.4) from a background thread, one connection at
/// a time — a scrape endpoint sees one poller every few seconds, not a
/// thundering herd. Returns the bound address (use port 0 to let the OS
/// pick). The thread runs for the life of the process.
///
/// The server is deliberately minimal (no routing, no keep-alive): any
/// `GET` line gets `200 OK` with the exposition; anything else gets
/// `405`. That is all `curl` and a Prometheus scraper need.
pub fn spawn_metrics_listener(addr: impl ToSocketAddrs) -> io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    std::thread::Builder::new()
        .name("sgs-metrics-http".into())
        .spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                let _ = serve_scrape(stream);
            }
        })?;
    Ok(bound)
}

fn serve_scrape(stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the headers so the client's write side is not reset before
    // it reads our response.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut stream = reader.into_inner();
    if request_line.starts_with("GET ") {
        let body = registry().render_prometheus();
        write!(
            stream,
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )?;
        stream.write_all(body.as_bytes())?;
    } else {
        let body = "method not allowed\n";
        write!(
            stream,
            "HTTP/1.1 405 Method Not Allowed\r\nContent-Type: text/plain\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )?;
    }
    stream.flush()
}
