//! Workload definitions shared by the harness binaries: datasets, the
//! three pattern-parameter cases of §8.1, and the window settings.

use sgs_core::{ClusterQuery, Point, WindowSpec};
use sgs_datagen::{generate_gmti, generate_stt, GmtiConfig, SttConfig};

/// Which stream to run (§8: STT for the main experiments, GMTI mirrored).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dataset {
    /// Stock Trading Traces-like 4-d stream.
    Stt,
    /// GMTI-like 2-d moving-object stream.
    Gmti,
}

impl Dataset {
    /// Parse from a CLI argument.
    pub fn parse(s: &str) -> Option<Dataset> {
        match s.to_ascii_lowercase().as_str() {
            "stt" => Some(Dataset::Stt),
            "gmti" => Some(Dataset::Gmti),
            _ => None,
        }
    }

    /// Dimensionality of the stream.
    pub fn dim(self) -> usize {
        match self {
            Dataset::Stt => 4,
            Dataset::Gmti => 2,
        }
    }

    /// Generate `n` records (seeded; equal calls give equal streams).
    pub fn points(self, n: usize) -> Vec<Point> {
        match self {
            Dataset::Stt => generate_stt(&SttConfig {
                n_records: n,
                ..SttConfig::default()
            }),
            Dataset::Gmti => generate_gmti(&GmtiConfig {
                n_records: n,
                ..GmtiConfig::default()
            }),
        }
    }

    /// The three pattern parameter cases of §8.1, scaled to each stream's
    /// coordinate ranges. For STT these are the paper's values verbatim.
    pub fn cases(self) -> [(f64, u32); 3] {
        match self {
            Dataset::Stt => [(0.05, 10), (0.1, 8), (0.2, 5)],
            Dataset::Gmti => [(0.25, 10), (0.5, 8), (1.0, 5)],
        }
    }
}

/// One experiment configuration: a pattern case plus a window setting.
#[derive(Clone, Debug)]
pub struct Config {
    /// Human-readable label ("case 1, slide 1K").
    pub label: String,
    /// The clustering query.
    pub query: ClusterQuery,
}

/// Build the §8.1 grid of configurations: the dataset's three cases,
/// windows of `win` tuples and slides from `slides`.
pub fn config_grid(dataset: Dataset, win: u64, slides: &[u64]) -> Vec<Config> {
    let mut out = Vec::new();
    for (case_idx, (theta_r, theta_c)) in dataset.cases().into_iter().enumerate() {
        for &slide in slides {
            let spec = WindowSpec::count(win, slide).expect("valid window");
            let query =
                ClusterQuery::new(theta_r, theta_c, dataset.dim(), spec).expect("valid query");
            out.push(Config {
                label: format!(
                    "case {} (θr={theta_r}, θc={theta_c}), slide {slide}",
                    case_idx + 1
                ),
                query,
            });
        }
    }
    out
}

/// Scale factor from CLI args: `--scale 0.1` shrinks the stream length for
/// quick runs; default 1.0 runs the full configured workload.
pub fn parse_scale(args: &[String]) -> f64 {
    args.windows(2)
        .find(|w| w[0] == "--scale")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(1.0)
}

/// Dataset from CLI args (`--dataset gmti`), defaulting to STT.
pub fn parse_dataset(args: &[String]) -> Dataset {
    args.windows(2)
        .find(|w| w[0] == "--dataset")
        .and_then(|w| Dataset::parse(&w[1]))
        .unwrap_or(Dataset::Stt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_cases_times_slides() {
        let grid = config_grid(Dataset::Stt, 1000, &[100, 500]);
        assert_eq!(grid.len(), 6);
        assert!(grid.iter().all(|c| c.query.dim == 4));
    }

    #[test]
    fn parse_args() {
        let args: Vec<String> = ["--scale", "0.25", "--dataset", "gmti"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_scale(&args), 0.25);
        assert_eq!(parse_dataset(&args), Dataset::Gmti);
        assert_eq!(parse_dataset(&[]), Dataset::Stt);
        assert_eq!(parse_scale(&[]), 1.0);
    }

    #[test]
    fn datasets_generate_points() {
        assert_eq!(Dataset::Stt.points(100).len(), 100);
        assert_eq!(Dataset::Gmti.points(100).len(), 100);
    }
}
