//! Range sampling — the shim's analogue of `rand::distributions`.

use core::ops::{Range, RangeInclusive};

use crate::{unit_f64, RngCore};

/// A range that can produce a uniform sample of `T`. Mirrors
/// `rand::distributions::uniform::SampleRange` for the half-open ranges the
/// workspace uses.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Widen to i128/u128 so the span never overflows, then take
                // the draw modulo the span. The modulo bias is < 2^-11 for
                // every span this workspace uses — irrelevant for test data.
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Lerp in f64 and reject draws that round up to the
                // exclusive bound after the cast (u ≈ 1 - 2⁻²⁵ is enough
                // to hit it in f32), preserving the half-open contract.
                loop {
                    let u = unit_f64(rng.next_u64());
                    let start = self.start as f64;
                    let v = (start + (self.end as f64 - start) * u) as $t;
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
    )*};
}

float_sample_range!(f32, f64);
