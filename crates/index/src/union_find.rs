//! Disjoint-set forest with path compression and union by rank.
//!
//! Extra-N forms each window view's clusters by unioning connected core
//! points; the output stage then groups by representative. The structure
//! supports growth (new elements appended) but never removal — a view only
//! ever gains points (expiry never removes from a *future* view), which is
//! the invariant that makes the per-view approach sound.

/// Disjoint sets over dense `usize` elements.
#[derive(Clone, Debug, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forest with `n` singleton sets.
    pub fn with_len(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the forest is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Append a new singleton element, returning its index.
    pub fn push(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id as u32);
        self.rank.push(0);
        id
    }

    /// Ensure elements `0..n` exist.
    pub fn grow(&mut self, n: usize) {
        while self.parent.len() < n {
            self.push();
        }
    }

    /// Representative of `x`'s set, with path compression.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // compress
        let mut cur = x;
        while self.parent[cur] as usize != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Non-mutating find (no compression) for read-only contexts.
    pub fn find_const(&self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        root
    }

    /// Merge the sets containing `a` and `b`. Returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            core::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            core::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            core::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Heap bytes retained.
    pub fn heap_bytes(&self) -> usize {
        self.parent.capacity() * 4 + self.rank.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_distinct() {
        let mut uf = UnionFind::with_len(4);
        for i in 0..4 {
            assert_eq!(uf.find(i), i);
        }
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn union_merges_transitively() {
        let mut uf = UnionFind::with_len(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already merged
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn push_and_grow() {
        let mut uf = UnionFind::new();
        assert!(uf.is_empty());
        assert_eq!(uf.push(), 0);
        uf.grow(10);
        assert_eq!(uf.len(), 10);
        assert_eq!(uf.find(9), 9);
    }

    #[test]
    fn find_const_matches_find() {
        let mut uf = UnionFind::with_len(6);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(1, 3);
        for i in 0..4 {
            assert_eq!(uf.find_const(i), uf.find(i));
        }
    }

    #[test]
    fn chains_compress() {
        // Build a long chain and check find flattens it.
        let mut uf = UnionFind::with_len(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        let root = uf.find(0);
        for i in 0..100 {
            assert_eq!(uf.find(i), root);
        }
    }
}
