//! Multi-resolution SGS (§6.1).
//!
//! The basic SGS (level 0) can be compressed hierarchically: each level-n
//! skeletal cell combines the level-(n−1) cells inside a θ-sized hypercube
//! (θᵈ of them in d dimensions). Per §6.1:
//!
//! * side length — level-(n−1) side × θ,
//! * status — core if any covered child is core,
//! * population — sum of covered children,
//! * connections — decided by the connections between *boundary* children:
//!   a level-n connection exists wherever some child connection crosses the
//!   parent boundary.
//!
//! Both space consumption and granularity at any level are exactly
//! computable ([`archived_bytes_at_level`]), which is what the archiver's
//! budget/accuracy-aware resolution selection (§6.1) relies on.

use sgs_core::CellCoord;
use sgs_index::FxHashMap;

use crate::packed;
use crate::sgs::{CellStatus, Sgs, SkeletalCell};

/// Combine an SGS one level up with compression rate `theta` (θ ≥ 2):
/// every θ-sized hypercube of cells becomes one coarser cell.
///
/// # Panics
/// Panics if `theta < 2`.
pub fn coarsen(sgs: &Sgs, theta: u32) -> Sgs {
    assert!(theta >= 2, "compression rate must be at least 2");
    let t = theta as i32;

    // Map child cell index -> parent coordinate.
    let parent_of = |coord: &CellCoord| -> CellCoord {
        CellCoord(coord.0.iter().map(|c| c.div_euclid(t)).collect())
    };

    // Aggregate population and status per parent.
    #[derive(Default)]
    struct Agg {
        population: u32,
        core: bool,
    }
    let mut parents: FxHashMap<CellCoord, Agg> = FxHashMap::default();
    let mut parent_coord_of_child: Vec<CellCoord> = Vec::with_capacity(sgs.cells.len());
    for cell in &sgs.cells {
        let pc = parent_of(&cell.coord);
        let agg = parents.entry(pc.clone()).or_default();
        agg.population += cell.population;
        agg.core |= cell.status == CellStatus::Core;
        parent_coord_of_child.push(pc);
    }

    // Canonical parent order.
    let mut coords: Vec<CellCoord> = parents.keys().cloned().collect();
    coords.sort_unstable();
    let index_of: FxHashMap<CellCoord, u32> = coords
        .iter()
        .enumerate()
        .map(|(i, c)| (c.clone(), i as u32))
        .collect();

    let mut cells: Vec<SkeletalCell> = coords
        .iter()
        .map(|c| {
            let agg = &parents[c];
            SkeletalCell {
                coord: c.clone(),
                population: agg.population,
                status: if agg.core {
                    CellStatus::Core
                } else {
                    CellStatus::Edge
                },
                connections: Vec::new(),
            }
        })
        .collect();

    // Lift child connections across parent boundaries (§6.1: decided by the
    // boundary children). Connections live on core cells; the child list is
    // mutual for core-core pairs and one-sided for attachments, so lifting
    // each entry preserves the convention.
    for (child_idx, cell) in sgs.cells.iter().enumerate() {
        if cell.status != CellStatus::Core {
            continue;
        }
        let pi = index_of[&parent_coord_of_child[child_idx]];
        for &conn in &cell.connections {
            let pj = index_of[&parent_coord_of_child[conn as usize]];
            if pi != pj {
                cells[pi as usize].connections.push(pj);
            }
        }
    }
    for cell in &mut cells {
        cell.connections.sort_unstable();
        cell.connections.dedup();
    }

    Sgs {
        dim: sgs.dim,
        side: sgs.side * theta as f64,
        level: sgs.level + 1,
        cells,
    }
}

/// Exact archived size (bytes) of a summary if stored at `level`, without
/// materializing the coarser summaries — the §6.1 budget computation: count
/// how many level-`level` cells are needed to cover the basic cells.
pub fn archived_bytes_at_level(sgs: &Sgs, theta: u32, level: u8) -> usize {
    assert!(theta >= 2);
    if level == 0 {
        return packed::archived_bytes(sgs);
    }
    let factor = (theta as i64).pow(level as u32);
    let mut parents: std::collections::BTreeSet<Box<[i64]>> = Default::default();
    for cell in &sgs.cells {
        let pc: Box<[i64]> = cell
            .coord
            .0
            .iter()
            .map(|&c| (c as i64).div_euclid(factor))
            .collect();
        parents.insert(pc);
    }
    parents.len() * packed::bytes_per_cell(sgs.dim) + packed::HEADER_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::member::MemberSet;
    use sgs_core::GridGeometry;

    fn strip_cluster() -> Sgs {
        // A 6-cell horizontal strip of cores plus one trailing edge cell.
        let cores: Vec<Box<[f64]>> = (0..12)
            .map(|i| vec![0.05 + i as f64 * 0.35, 0.05].into())
            .collect();
        let edges: Vec<Box<[f64]>> = vec![vec![4.6, 0.05].into()];
        Sgs::from_members(&MemberSet::new(cores, edges), &GridGeometry::basic(2, 1.0))
    }

    #[test]
    fn coarsen_reduces_cell_count() {
        let base = strip_cluster();
        let coarse = coarsen(&base, 3);
        assert!(coarse.volume() < base.volume());
        assert_eq!(coarse.level, 1);
        assert!((coarse.side - base.side * 3.0).abs() < 1e-12);
        coarse.validate().unwrap();
    }

    #[test]
    fn population_is_preserved() {
        let base = strip_cluster();
        let coarse = coarsen(&base, 3);
        assert_eq!(coarse.population(), base.population());
        let coarser = coarsen(&coarse, 2);
        assert_eq!(coarser.population(), base.population());
        assert_eq!(coarser.level, 2);
    }

    #[test]
    fn core_status_survives_if_any_child_core() {
        let base = strip_cluster();
        let coarse = coarsen(&base, 3);
        assert!(coarse.core_count() >= 1);
        // Every parent containing a core child must be core: population of
        // cores in base is 12 spread over parents; since base strip is all
        // cores except the last cell, at most the last parent may be edge.
        let edge_parents = coarse.volume() - coarse.core_count();
        assert!(edge_parents <= 1);
    }

    #[test]
    fn connectivity_is_preserved_at_coarse_level() {
        // The strip is one component at level 0 and must stay one component.
        let base = strip_cluster();
        assert_eq!(base.components().len(), 1);
        let coarse = coarsen(&base, 3);
        assert_eq!(coarse.components().len(), 1);
    }

    #[test]
    fn disconnected_components_stay_disconnected_unless_merged_by_geometry() {
        // Two blobs 100 cells apart cannot share a parent at θ=3.
        let cores_a: Vec<Box<[f64]>> = (0..4)
            .map(|i| vec![0.05 + i as f64 * 0.3, 0.05].into())
            .collect();
        let cores_b: Vec<Box<[f64]>> = (0..4)
            .map(|i| vec![70.0 + i as f64 * 0.3, 0.05].into())
            .collect();
        let base = Sgs::from_members(
            &MemberSet::new([cores_a, cores_b].concat(), vec![]),
            &GridGeometry::basic(2, 1.0),
        );
        assert_eq!(base.components().len(), 2);
        let coarse = coarsen(&base, 3);
        assert_eq!(coarse.components().len(), 2);
    }

    #[test]
    fn negative_coordinates_coarsen_correctly() {
        let cores: Vec<Box<[f64]>> = (0..6)
            .map(|i| vec![-2.0 + i as f64 * 0.35, -0.05].into())
            .collect();
        let base = Sgs::from_members(&MemberSet::new(cores, vec![]), &GridGeometry::basic(2, 1.0));
        let coarse = coarsen(&base, 2);
        assert_eq!(coarse.population(), base.population());
        coarse.validate().unwrap();
        // div_euclid semantics: -1 / 2 → -1, not 0
        assert!(coarse
            .cells
            .iter()
            .any(|c| c.coord.0.iter().any(|&v| v < 0)));
    }

    #[test]
    fn bytes_at_level_zero_matches_packed() {
        let base = strip_cluster();
        assert_eq!(
            archived_bytes_at_level(&base, 3, 0),
            packed::archived_bytes(&base)
        );
    }

    #[test]
    fn bytes_shrink_with_level() {
        let base = strip_cluster();
        let b0 = archived_bytes_at_level(&base, 3, 0);
        let b1 = archived_bytes_at_level(&base, 3, 1);
        let b2 = archived_bytes_at_level(&base, 3, 2);
        assert!(b1 < b0);
        assert!(b2 <= b1);
    }

    #[test]
    fn bytes_at_level_matches_materialized_coarsening() {
        let base = strip_cluster();
        let coarse = coarsen(&base, 3);
        assert_eq!(
            archived_bytes_at_level(&base, 3, 1),
            packed::archived_bytes(&coarse)
        );
    }
}
