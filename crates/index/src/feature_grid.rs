//! The non-locational feature index of the pattern base (§7.1).
//!
//! Archived clusters are indexed by a small feature vector — in the paper a
//! four-dimensional one: *volume* (number of skeletal grid cells), *status
//! count* (number of core cells), *average density* and *average
//! connectivity*. Candidate search derives a per-dimension interval from
//! the distance threshold and feature weights (§7.2) and collects every
//! cluster whose features fall inside the resulting hyper-rectangle.
//!
//! The index is a uniform grid over feature space: each dimension has a
//! bucket width; clusters hash into the bucket of their feature vector, and
//! a range search scans only the buckets intersecting the query box.

use crate::fx::FxHashMap;

/// One bucket's contents: stored feature vectors with their payloads.
type Bucket<T> = Vec<(Box<[f64]>, T)>;

/// Uniform grid index over `d`-dimensional feature vectors.
#[derive(Clone, Debug)]
pub struct FeatureGrid<T> {
    widths: Box<[f64]>,
    buckets: FxHashMap<Box<[i64]>, Bucket<T>>,
    len: usize,
}

impl<T> FeatureGrid<T> {
    /// New index with the given per-dimension bucket widths.
    ///
    /// # Panics
    /// Panics if any width is non-positive or the vector is empty.
    pub fn new(widths: impl Into<Box<[f64]>>) -> Self {
        let widths = widths.into();
        assert!(!widths.is_empty(), "at least one feature dimension");
        assert!(
            widths.iter().all(|w| *w > 0.0 && w.is_finite()),
            "bucket widths must be positive and finite"
        );
        FeatureGrid {
            widths,
            buckets: FxHashMap::default(),
            len: 0,
        }
    }

    /// Number of feature dimensions.
    #[inline]
    pub fn dim(&self) -> usize {
        self.widths.len()
    }

    /// Number of indexed entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_of(&self, features: &[f64]) -> Box<[i64]> {
        features
            .iter()
            .zip(self.widths.iter())
            .map(|(f, w)| (f / w).floor() as i64)
            .collect()
    }

    /// Index `value` under `features`.
    ///
    /// # Panics
    /// Panics if `features.len() != self.dim()`.
    pub fn insert(&mut self, features: &[f64], value: T) {
        assert_eq!(features.len(), self.dim(), "feature dimensionality");
        let key = self.bucket_of(features);
        self.buckets
            .entry(key)
            .or_default()
            .push((features.into(), value));
        self.len += 1;
    }

    /// Collect every value whose features lie inside the closed box
    /// `[lo[i], hi[i]]` on every dimension.
    pub fn range_search<'a>(&'a self, lo: &[f64], hi: &[f64], out: &mut Vec<&'a T>) {
        assert_eq!(lo.len(), self.dim());
        assert_eq!(hi.len(), self.dim());
        let lo_b: Vec<i64> = lo
            .iter()
            .zip(self.widths.iter())
            .map(|(f, w)| (f / w).floor() as i64)
            .collect();
        let hi_b: Vec<i64> = hi
            .iter()
            .zip(self.widths.iter())
            .map(|(f, w)| (f / w).floor() as i64)
            .collect();
        // Odometer over the bucket box.
        let mut cur = lo_b.clone();
        'outer: loop {
            if let Some(bucket) = self.buckets.get(cur.as_slice()) {
                for (f, v) in bucket {
                    if f.iter()
                        .zip(lo.iter().zip(hi.iter()))
                        .all(|(x, (l, h))| l <= x && x <= h)
                    {
                        out.push(v);
                    }
                }
            }
            let mut i = 0;
            loop {
                if i == cur.len() {
                    break 'outer;
                }
                cur[i] += 1;
                if cur[i] <= hi_b[i] {
                    break;
                }
                cur[i] = lo_b[i];
                i += 1;
            }
        }
    }

    /// Visit all entries (features, value).
    pub fn for_each<'a>(&'a self, mut f: impl FnMut(&'a [f64], &'a T)) {
        for bucket in self.buckets.values() {
            for (feat, v) in bucket {
                f(feat, v);
            }
        }
    }

    /// Approximate retained heap bytes.
    pub fn heap_bytes(&self) -> usize {
        let mut bytes = self.buckets.capacity()
            * (core::mem::size_of::<(Box<[i64]>, Vec<(Box<[f64]>, T)>)>() + 1);
        for (k, v) in &self.buckets {
            bytes += k.len() * 8;
            bytes += v.capacity() * core::mem::size_of::<(Box<[f64]>, T)>();
            bytes += v.iter().map(|(f, _)| f.len() * 8).sum::<usize>();
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> FeatureGrid<u32> {
        FeatureGrid::new(vec![10.0, 5.0])
    }

    #[test]
    fn insert_and_exact_search() {
        let mut g = grid();
        g.insert(&[12.0, 3.0], 1);
        g.insert(&[99.0, 4.9], 2);
        let mut out = Vec::new();
        g.range_search(&[10.0, 0.0], &[20.0, 5.0], &mut out);
        assert_eq!(out, vec![&1]);
    }

    #[test]
    fn range_is_closed() {
        let mut g = grid();
        g.insert(&[10.0, 5.0], 7);
        let mut out = Vec::new();
        g.range_search(&[10.0, 5.0], &[10.0, 5.0], &mut out);
        assert_eq!(out, vec![&7]);
    }

    #[test]
    fn filters_within_bucket() {
        // Two entries in the same bucket; only one inside the query box.
        let mut g = grid();
        g.insert(&[1.0, 1.0], 1);
        g.insert(&[9.0, 4.0], 2);
        let mut out = Vec::new();
        g.range_search(&[0.0, 0.0], &[5.0, 5.0], &mut out);
        assert_eq!(out, vec![&1]);
    }

    #[test]
    fn matches_linear_scan() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut g = FeatureGrid::new(vec![7.0, 3.0, 11.0]);
        let mut all = Vec::new();
        for i in 0..300u32 {
            let f = [
                rng.gen_range(0.0..100.0),
                rng.gen_range(0.0..50.0),
                rng.gen_range(-20.0..20.0),
            ];
            g.insert(&f, i);
            all.push((f, i));
        }
        for _ in 0..30 {
            let lo = [
                rng.gen_range(0.0..80.0),
                rng.gen_range(0.0..40.0),
                rng.gen_range(-20.0..10.0),
            ];
            let hi = [lo[0] + 15.0, lo[1] + 10.0, lo[2] + 12.0];
            let mut fast = Vec::new();
            g.range_search(&lo, &hi, &mut fast);
            let mut fast: Vec<u32> = fast.into_iter().copied().collect();
            fast.sort();
            let mut slow: Vec<u32> = all
                .iter()
                .filter(|(f, _)| (0..3).all(|d| lo[d] <= f[d] && f[d] <= hi[d]))
                .map(|(_, i)| *i)
                .collect();
            slow.sort();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn negative_coordinates() {
        let mut g = grid();
        g.insert(&[-12.0, -3.0], 5);
        let mut out = Vec::new();
        g.range_search(&[-20.0, -5.0], &[-10.0, 0.0], &mut out);
        assert_eq!(out, vec![&5]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_widths() {
        FeatureGrid::<u32>::new(vec![1.0, 0.0]);
    }

    #[test]
    fn for_each_and_len() {
        let mut g = grid();
        g.insert(&[1.0, 1.0], 1);
        g.insert(&[2.0, 2.0], 2);
        assert_eq!(g.len(), 2);
        let mut n = 0;
        g.for_each(|_, _| n += 1);
        assert_eq!(n, 2);
    }
}
