//! Region hashing: routing grid cells to extraction shards.
//!
//! Sharded C-SGS (`DESIGN.md` §6) partitions a query's extraction state by
//! *grid region* — a hypercube of `width^d` basic cells. The region width
//! is chosen at least as large as the range-query reach
//! ([`GridGeometry::reach`](sgs_core::GridGeometry::reach)), so any point's
//! ε-neighborhood spans at most the 3^d regions adjacent to its own: a
//! shard resolving neighbors only ever reads its own and adjacent shards'
//! indexes.
//!
//! Routing is `FxHash(region coordinates) mod S` — deterministic across
//! runs and processes (the hasher is seeded with compile-time constants),
//! which the sharded extractor's reproducibility relies on.

use std::hash::Hasher;

use sgs_core::CellCoord;

use crate::fx::FxHasher;

/// Deterministic cell → shard routing by coarsened (region) coordinate.
#[derive(Clone, Debug)]
pub struct ShardRouter {
    width: i32,
    shards: u32,
}

impl ShardRouter {
    /// Router over `shards` shards with regions `width` cells wide.
    ///
    /// # Panics
    /// Panics if `width < 1` or `shards < 1`.
    pub fn new(width: i32, shards: usize) -> Self {
        assert!(width >= 1, "region width must be at least one cell");
        assert!(shards >= 1, "at least one shard is required");
        ShardRouter {
            width,
            shards: shards as u32,
        }
    }

    /// Number of shards routed over.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// Region width in cells.
    #[inline]
    pub fn width(&self) -> i32 {
        self.width
    }

    /// The region coordinate of a cell (floor division per dimension).
    pub fn region_of(&self, cell: &CellCoord) -> CellCoord {
        CellCoord(cell.0.iter().map(|c| c.div_euclid(self.width)).collect())
    }

    /// The shard owning a cell. Allocation-free: hashes the region
    /// coordinates without materializing them.
    #[inline]
    pub fn shard_of(&self, cell: &CellCoord) -> usize {
        if self.shards == 1 {
            return 0;
        }
        let mut h = FxHasher::default();
        for c in cell.0.iter() {
            h.write_u32(c.div_euclid(self.width) as u32);
        }
        (h.finish() % self.shards as u64) as usize
    }

    /// The shard owning an already-coarsened region coordinate — for
    /// callers that enumerate whole regions (the sharded range-query
    /// search visits each region of a reachability block once instead of
    /// routing every cell).
    #[inline]
    pub fn shard_of_region(&self, region: &[i32]) -> usize {
        if self.shards == 1 {
            return 0;
        }
        let mut h = FxHasher::default();
        for &r in region {
            h.write_u32(r as u32);
        }
        (h.finish() % self.shards as u64) as usize
    }

    /// The shard owning the cell a *point* falls in, given the grid's cell
    /// side length — equivalent to `shard_of(geometry.cell_of(point))` but
    /// without materializing the cell coordinate (batch bucketing runs
    /// this once per arriving object).
    #[inline]
    pub fn shard_of_coords(&self, coords: &[f64], side: f64) -> usize {
        if self.shards == 1 {
            return 0;
        }
        let mut h = FxHasher::default();
        for &x in coords {
            let cell = (x / side).floor() as i32;
            h.write_u32(cell.div_euclid(self.width) as u32);
        }
        (h.finish() % self.shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc(v: &[i32]) -> CellCoord {
        CellCoord::new(v.to_vec())
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r = ShardRouter::new(2, 1);
        assert_eq!(r.shard_of(&cc(&[5, -3])), 0);
        assert_eq!(r.shard_of(&cc(&[-100, 100])), 0);
    }

    #[test]
    fn cells_of_one_region_share_a_shard() {
        let r = ShardRouter::new(3, 4);
        // Cells 0..3 per dimension are all region (0, 0).
        let base = r.shard_of(&cc(&[0, 0]));
        for x in 0..3 {
            for y in 0..3 {
                assert_eq!(r.shard_of(&cc(&[x, y])), base);
            }
        }
        assert_eq!(r.region_of(&cc(&[2, 2])), cc(&[0, 0]));
        // Negative coordinates floor toward -infinity, not zero.
        assert_eq!(r.region_of(&cc(&[-1, -3])), cc(&[-1, -1]));
        assert_eq!(r.shard_of(&cc(&[-1, -1])), r.shard_of(&cc(&[-3, -3])));
    }

    #[test]
    fn shard_of_region_matches_cell_routing() {
        let r = ShardRouter::new(2, 8);
        for x in -15..15 {
            for y in -15..15 {
                let cell = cc(&[x, y]);
                let region: Vec<i32> = cell.0.iter().map(|c| c.div_euclid(2)).collect();
                assert_eq!(r.shard_of(&cell), r.shard_of_region(&region));
            }
        }
    }

    #[test]
    fn shard_of_coords_matches_cell_routing() {
        use sgs_core::{GridGeometry, Point};
        let g = GridGeometry::basic(2, 0.7);
        let r = ShardRouter::new(g.reach(), 4);
        for i in 0..200 {
            let coords = vec![(i as f64 * 0.37) - 20.0, (i as f64 * 0.91) - 30.0];
            let cell = g.cell_of(&Point::new(coords.clone(), 0));
            assert_eq!(r.shard_of_coords(&coords, g.side()), r.shard_of(&cell));
        }
    }

    #[test]
    fn routing_is_deterministic_and_spreads() {
        let r = ShardRouter::new(2, 4);
        let mut seen = [false; 4];
        for x in -20..20 {
            for y in -20..20 {
                let s = r.shard_of(&cc(&[x * 2, y * 2]));
                assert!(s < 4);
                assert_eq!(s, r.shard_of(&cc(&[x * 2, y * 2])));
                seen[s] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all shards should receive regions");
    }
}
