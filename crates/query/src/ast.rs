//! Parsed query representations.

use sgs_core::{ClusterQuery, Result, WindowSpec};
use sgs_matching::MatchConfig;

/// Which representations a continuous query returns (Fig. 2's `f+s`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputFormat {
    /// Full representation only.
    Full,
    /// Summarized (SGS) representation only.
    Summarized,
    /// Both (`f+s`).
    Both,
}

/// A parsed continuous clustering query (Fig. 2).
#[derive(Clone, Debug, PartialEq)]
pub struct DetectQuery {
    /// Requested output representations.
    pub output: OutputFormat,
    /// Source stream name (free identifier after `FROM`).
    pub stream: String,
    /// Range threshold θr.
    pub theta_range: f64,
    /// Count threshold θc.
    pub theta_cnt: u32,
    /// Window extent.
    pub win: u64,
    /// Slide extent.
    pub slide: u64,
    /// `true` for time-based windows (`WITH win = 10 SECONDS`-style units
    /// are normalized by the parser).
    pub time_based: bool,
}

impl DetectQuery {
    /// Materialize into an executable [`ClusterQuery`]. Dimensionality is
    /// a property of the stream source and is supplied here.
    pub fn to_cluster_query(&self, dim: usize) -> Result<ClusterQuery> {
        let spec = if self.time_based {
            WindowSpec::time(self.win, self.slide)?
        } else {
            WindowSpec::count(self.win, self.slide)?
        };
        ClusterQuery::new(self.theta_range, self.theta_cnt, dim, spec)
    }
}

impl core::fmt::Display for OutputFormat {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            OutputFormat::Full => "f",
            OutputFormat::Summarized => "s",
            OutputFormat::Both => "f+s",
        })
    }
}

impl core::fmt::Display for DetectQuery {
    /// Render in the canonical Fig. 2 surface syntax. The rendering
    /// round-trips: `parse_detect(&q.to_string()) == Ok(q)` (f64 `Display`
    /// is shortest-round-trip, and the lexer re-reads it exactly).
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "DETECT DensityBasedClusters {} FROM {} \
             USING theta_range = {} AND theta_cnt = {} \
             IN Windows WITH win = {} AND slide = {}",
            self.output, self.stream, self.theta_range, self.theta_cnt, self.win, self.slide,
        )?;
        if self.time_based {
            f.write_str(" TIME")?;
        }
        Ok(())
    }
}

/// A parsed cluster matching query (Fig. 3).
#[derive(Clone, Debug, PartialEq)]
pub struct MatchQueryAst {
    /// Name of the to-be-matched cluster (the `GIVEN` binding).
    pub given: String,
    /// Similarity threshold from the `WHERE Distance(..) <= t` clause.
    pub threshold: f64,
    /// Position sensitivity (`ps = 0|1`); defaults to non-sensitive.
    pub position_sensitive: bool,
    /// Feature weights; default equal.
    pub weights: [f64; 4],
}

impl MatchQueryAst {
    /// Materialize into an executable [`MatchConfig`].
    pub fn to_match_config(&self) -> Result<MatchConfig> {
        let config = MatchConfig {
            position_sensitive: self.position_sensitive,
            weights: self.weights,
            threshold: self.threshold,
            alignment_budget: 64,
        };
        config.validate()?;
        Ok(config)
    }
}

impl core::fmt::Display for MatchQueryAst {
    /// Render in the canonical Fig. 3 surface syntax (with the `USING`
    /// metric-customization extension always spelled out, since the AST
    /// does not record whether the defaults were explicit). The rendering
    /// round-trips: `parse_match(&q.to_string()) == Ok(q)`.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "GIVEN DensityBasedClusters {g} \
             SELECT DensityBasedClusters FROM History \
             WHERE Distance({g}, {g}) <= {} \
             USING ps = {} AND weights = ({}, {}, {}, {})",
            self.threshold,
            u8::from(self.position_sensitive),
            self.weights[0],
            self.weights[1],
            self.weights[2],
            self.weights[3],
            g = self.given,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_display_is_canonical() {
        let q = DetectQuery {
            output: OutputFormat::Both,
            stream: "gmti".into(),
            theta_range: 0.1,
            theta_cnt: 8,
            win: 10_000,
            slide: 1_000,
            time_based: false,
        };
        assert_eq!(
            q.to_string(),
            "DETECT DensityBasedClusters f+s FROM gmti \
             USING theta_range = 0.1 AND theta_cnt = 8 \
             IN Windows WITH win = 10000 AND slide = 1000"
        );
        let timed = DetectQuery {
            output: OutputFormat::Full,
            time_based: true,
            ..q
        };
        assert!(timed
            .to_string()
            .starts_with("DETECT DensityBasedClusters f FROM"));
        assert!(timed.to_string().ends_with(" TIME"));
    }

    #[test]
    fn match_display_is_canonical() {
        let q = MatchQueryAst {
            given: "Ci".into(),
            threshold: 0.2,
            position_sensitive: true,
            weights: [0.1, 0.2, 0.3, 0.4],
        };
        assert_eq!(
            q.to_string(),
            "GIVEN DensityBasedClusters Ci \
             SELECT DensityBasedClusters FROM History \
             WHERE Distance(Ci, Ci) <= 0.2 \
             USING ps = 1 AND weights = (0.1, 0.2, 0.3, 0.4)"
        );
    }

    #[test]
    fn detect_query_materializes() {
        let q = DetectQuery {
            output: OutputFormat::Both,
            stream: "stream".into(),
            theta_range: 0.1,
            theta_cnt: 8,
            win: 10_000,
            slide: 1_000,
            time_based: false,
        };
        let cq = q.to_cluster_query(4).unwrap();
        assert_eq!(cq.theta_c, 8);
        assert_eq!(cq.window.views(), 10);
    }

    #[test]
    fn match_query_materializes_and_validates() {
        let q = MatchQueryAst {
            given: "C1".into(),
            threshold: 0.2,
            position_sensitive: true,
            weights: [0.25; 4],
        };
        let cfg = q.to_match_config().unwrap();
        assert!(cfg.position_sensitive);

        let bad = MatchQueryAst {
            weights: [0.5; 4],
            ..q
        };
        assert!(bad.to_match_config().is_err());
    }
}
