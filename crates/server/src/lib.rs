//! # sgs-server
//!
//! The TCP network front-end of the streamsum engine (`DESIGN.md` §9):
//! an embeddable [`Server`] that listens on a socket and multiplexes any
//! number of client connections onto **one shared
//! [`Runtime`]** — the step that turns the in-process multi-query engine
//! into a service remote analysts share, per the paper's setting of
//! analysts issuing DETECT/MATCH statements against live streams (§1,
//! Figs. 2–3). The `streamsum-server` binary is a thin CLI around it.
//!
//! ## Session model
//!
//! Each connection is a **session** served by one OS thread (network
//! threads block on sockets; the compute stays on the runtime's
//! `sgs-exec` scheduler pool). A session:
//!
//! * owns its query namespace: ids on the wire are session-local
//!   (`Q0, Q1, ...` per connection), mapped to runtime [`QueryId`]s
//!   through the session's table and tagged with a runtime
//!   [`OwnerId`] — another session cannot name,
//!   list, poll, or cancel them;
//! * feeds only its own queries: `Feed` frames route through
//!   [`Runtime::push_stream_for`], so two sessions replaying the same
//!   stream each see exactly their own data (byte-identical to a solo
//!   run), while both archives still merge into the **shared history**
//!   that matching statements query — the paper's many-analysts /
//!   one-history arrangement;
//! * is throttled end to end: a full bounded per-query `InputQueue`
//!   blocks the session's `Feed` dispatch, which delays its ack, which
//!   stops the client — and an unread socket eventually exerts plain TCP
//!   flow control. Polled windows respect the runtime's configured
//!   `OutputPolicy` (drained via [`Runtime::poll_batch`], which frees
//!   output-buffer capacity window by window).
//!
//! On disconnect (clean `Goodbye` or a dropped socket) the session's
//! live queries are cancelled, so abandoned clients do not leak pipeline
//! state — their archived history remains, by design.

pub mod metrics;

use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use sgs_core::Point;
use sgs_runtime::{
    OwnerId, QueryDescriptor, QueryId, QueryState, QueryStats, Runtime, RuntimeConfig, RuntimeError,
};
use sgs_wire::{
    decode, write_frame, ErrorCode, Frame, WireError, WireMetric, WireMetricValue, WireQuery,
    WireQueryState, WireStats, WireWindow, WIRE_VERSION,
};

pub use metrics::spawn_metrics_listener;
use metrics::{CountingStream, ServerMetrics};

/// Construction-time settings of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Configuration of the shared [`Runtime`] all sessions multiplex
    /// onto. Note that [`RuntimeConfig::output_policy`] governs every
    /// session's poll buffers; `Block` requires clients to interleave
    /// polls with feeds (see `DESIGN.md` §9) — prefer `DropOldest` for
    /// slow remote consumers.
    pub runtime: RuntimeConfig,
    /// Source streams to register (name, dimensionality). Defaults to
    /// the two generator streams: `gmti` (2-d) and `stt` (4-d).
    pub streams: Vec<(String, usize)>,
    /// Close a session that produces no complete request frame within
    /// this window (counted from the previous complete frame; a peer
    /// stalled mid-frame trips it too). `None` (the default) keeps
    /// sessions open indefinitely — the historical behavior.
    pub idle_timeout: Option<Duration>,
    /// Per-owner admission control: maximum live (non-cancelled)
    /// queries one session may hold. A `Submit` of a DETECT statement
    /// past the limit is refused with
    /// [`ErrorCode::QuotaExceeded`]; cancelling a query frees a slot.
    /// `None` (the default) is unlimited.
    pub owner_max_queries: Option<usize>,
    /// Per-owner admission control: maximum bytes of
    /// admitted-but-unprocessed input across one session's query input
    /// queues. A `Feed` that would exceed it is refused whole with
    /// [`ErrorCode::QuotaExceeded`]; processing drains the level.
    /// `None` (the default) is unlimited (backpressure alone governs).
    pub owner_max_queue_bytes: Option<usize>,
    /// Per-owner admission control: once one session's
    /// completed-but-unpolled windows exceed this many (wire-encoded)
    /// bytes, further `Feed`s are refused with
    /// [`ErrorCode::QuotaExceeded`] until the session polls. `None`
    /// (the default) is unlimited.
    pub owner_max_buffer_bytes: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            runtime: RuntimeConfig::default(),
            streams: vec![("gmti".into(), 2), ("stt".into(), 4)],
            idle_timeout: None,
            owner_max_queries: None,
            owner_max_queue_bytes: None,
            owner_max_buffer_bytes: None,
        }
    }
}

/// Byte budget of one `Windows` response page (8 MiB — an 8× margin
/// under [`sgs_wire::MAX_FRAME_LEN`]): a `Poll` stops collecting once
/// the accumulated window payload crosses it, leaving the rest buffered
/// for the client's next page request.
const POLL_PAGE_BYTES: usize = 8 << 20;

/// How often a session's read loop wakes to check the drain flag and
/// its idle deadline (the socket read timeout). Also bounds how long a
/// disconnect watcher's `peek` can block.
const READ_TICK: Duration = Duration::from_millis(100);

/// The session-limit subset of [`ServerConfig`], shared with every
/// session thread.
#[derive(Clone, Copy, Debug, Default)]
struct Limits {
    idle_timeout: Option<Duration>,
    owner_max_queries: Option<usize>,
    owner_max_queue_bytes: Option<usize>,
    owner_max_buffer_bytes: Option<usize>,
}

/// One live session's entry in the drain registry: a socket clone to
/// force-close stragglers with, and the owner whose output buffers must
/// be released when that happens (a force-closed session may be wedged
/// mid-`Feed` behind a full `Block`-policy buffer).
struct Seat {
    socket: TcpStream,
    owner: OwnerId,
}

/// State shared by the accept loop and every session thread.
struct Shared {
    rt: RwLock<Runtime>,
    shutting_down: AtomicBool,
    /// Set by [`ServerHandle::drain`]: sessions send `GoAway` at their
    /// next read tick and close instead of serving further requests.
    draining: AtomicBool,
    /// Set once [`ServerHandle::drain`] has finished its final
    /// checkpoint; [`Server::run`] waits for it before returning so the
    /// hosting process cannot exit mid-checkpoint.
    drain_done: AtomicBool,
    /// The `drain_millis` value `GoAway` frames advertise.
    drain_millis: AtomicU64,
    /// Live sessions by seat id — present from handshake until the
    /// session's teardown (cancel + evict) has fully finished, so an
    /// empty registry means the runtime holds no session state.
    seats: Mutex<HashMap<u64, Seat>>,
    next_seat: AtomicU64,
    limits: Limits,
    metrics: ServerMetrics,
}

/// The listening server. Construct with [`Server::bind`], then either
/// [`run`](Server::run) on the current thread or hand it to a spawned
/// one (tests drive an in-process server exactly that way).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Clonable controller for a running [`Server`] (shutdown from another
/// thread).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Stop accepting connections and make [`Server::run`] return once
    /// the sessions alive at this moment have ended. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection. An
        // unspecified bind address (0.0.0.0 / ::) is not connectable —
        // rewrite it to the matching loopback, same port.
        let mut addr = self.addr;
        if addr.ip().is_unspecified() {
            match &mut addr {
                SocketAddr::V4(v4) => v4.set_ip(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(v6) => v6.set_ip(std::net::Ipv6Addr::LOCALHOST),
            }
        }
        let _ = TcpStream::connect(addr);
    }

    /// Gracefully drain the server (`DESIGN.md` §12): stop accepting,
    /// announce `GoAway` to every session at its next read tick, wait up
    /// to `timeout` for sessions to finish voluntarily, force-close the
    /// stragglers (socket shutdown + releasing their owners' output
    /// buffers, so even a session wedged mid-`Feed` unblocks), and
    /// finally checkpoint every durable history base so a restarted
    /// server recovers the archive from a clean store file. Returns the
    /// number of sessions that had to be force-closed (0 = fully
    /// graceful). [`Server::run`] returns once the drain completes.
    pub fn drain(&self, timeout: Duration) -> usize {
        let shared = &self.shared;
        shared.metrics.drains.inc();
        shared
            .drain_millis
            .store(timeout.as_millis() as u64, Ordering::SeqCst);
        shared.draining.store(true, Ordering::SeqCst);
        self.shutdown();

        // Phase 1: sessions notice the flag within one read tick, send
        // GoAway, and tear themselves down. Wait out the grace window.
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if shared.seats.lock().unwrap().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }

        // Phase 2: force-close whoever is left. Shutting the socket
        // breaks their read loop; releasing the owner's output buffers
        // breaks a Feed wedged behind a full Block-policy buffer (the
        // reply write then fails on the shut socket).
        let forced = {
            let seats = shared.seats.lock().unwrap();
            for seat in seats.values() {
                let _ = seat.socket.shutdown(Shutdown::Both);
                shared.rt.read().close_outputs(seat.owner);
            }
            seats.len()
        };
        // Forced sessions unwind through normal teardown; give that a
        // bounded grace so the checkpoint below sees their cancels.
        let grace = Instant::now() + Duration::from_secs(5);
        while forced > 0 && Instant::now() < grace {
            if shared.seats.lock().unwrap().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }

        // Phase 3: make the archive durable *now*. Teardown only
        // cancels pipelines; the WAL would recover without this, but a
        // checkpointed store file makes restart recovery instant and
        // exercises the same path as the periodic checkpointer.
        let rt = shared.rt.read();
        for (_dim, history) in rt.histories() {
            let mut base = history.write();
            if base.is_durable() {
                let _ = base.checkpoint();
            }
        }
        drop(rt);
        shared.drain_done.store(true, Ordering::SeqCst);
        forced
    }
}

impl Server {
    /// Bind the listening socket and build the shared runtime. Use port
    /// 0 to let the OS pick (read it back with
    /// [`local_addr`](Self::local_addr)).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let mut rt = Runtime::with_config(config.runtime);
        for (name, dim) in &config.streams {
            rt.register_stream(name, *dim);
        }
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                rt: RwLock::new(rt),
                shutting_down: AtomicBool::new(false),
                draining: AtomicBool::new(false),
                drain_done: AtomicBool::new(false),
                drain_millis: AtomicU64::new(0),
                seats: Mutex::new(HashMap::new()),
                next_seat: AtomicU64::new(0),
                limits: Limits {
                    idle_timeout: config.idle_timeout,
                    owner_max_queries: config.owner_max_queries,
                    owner_max_queue_bytes: config.owner_max_queue_bytes,
                    owner_max_buffer_bytes: config.owner_max_buffer_bytes,
                },
                metrics: ServerMetrics::new(),
            }),
        })
    }

    /// The bound address (the real port when bound to port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A controller usable from other threads.
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle {
            shared: self.shared.clone(),
            addr: self.local_addr()?,
        })
    }

    /// Accept and serve connections until [`ServerHandle::shutdown`].
    /// Each connection gets one session thread; the call returns after
    /// the accept loop stops and every session thread has ended.
    pub fn run(self) -> io::Result<()> {
        let mut sessions = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => return Err(e),
            };
            let shared = self.shared.clone();
            sessions.push(std::thread::spawn(move || serve_session(&shared, stream)));
            // Reap finished sessions so a long-lived server does not
            // accumulate one parked JoinHandle per past connection.
            sessions.retain(|h| !h.is_finished());
        }
        for session in sessions {
            let _ = session.join();
        }
        // A drain wakes this loop during its phase 1, long before its
        // final checkpoint. Honor the documented contract — `run`
        // returns once the drain *completes* — so a `main` that exits
        // right after us cannot kill the checkpoint midway.
        while self.shared.draining.load(Ordering::SeqCst)
            && !self.shared.drain_done.load(Ordering::SeqCst)
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

/// One session's table of queries: index = session-local id.
struct Session {
    owner: OwnerId,
    queries: Vec<QueryId>,
}

impl Session {
    fn resolve(&self, local: u64) -> Result<QueryId, Frame> {
        self.queries
            .get(local as usize)
            .copied()
            .ok_or_else(|| error_frame(ErrorCode::UnknownQuery, format!("no query Q{local}")))
    }
}

/// What one turn of the tick-based frame reader produced.
enum Step {
    /// A complete, well-formed request frame.
    Frame(Frame),
    /// The server started draining: send `GoAway` and close.
    Drain,
    /// No complete frame arrived within the idle deadline.
    Idle,
    /// The peer is gone (clean close, mid-frame EOF, or a transport
    /// error) — nothing left to say to it.
    Gone,
    /// Malformed bytes: explain with a typed Protocol error, then close.
    Wire(WireError),
}

/// Read one frame through the session's incremental buffer, waking every
/// [`READ_TICK`] (the socket read timeout) to check the drain flag and
/// the idle deadline. Unlike a blocking `read_frame`, a timeout here
/// never tears a frame: partial bytes stay in `buf` for the next tick.
fn next_frame(stream: &mut CountingStream, buf: &mut Vec<u8>, shared: &Shared) -> Step {
    let deadline = shared.limits.idle_timeout.map(|d| Instant::now() + d);
    loop {
        match decode(buf) {
            Ok(Some((frame, used))) => {
                buf.drain(..used);
                return Step::Frame(frame);
            }
            Ok(None) => {}
            Err(e) => return Step::Wire(e),
        }
        if shared.draining.load(Ordering::SeqCst) {
            return Step::Drain;
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Step::Gone,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    return Step::Idle;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Step::Gone,
        }
    }
}

/// Watch a session's socket from a side thread while the session thread
/// may be blocked elsewhere (most importantly: wedged in a `Feed`
/// against a full `Block`-policy output buffer). `peek` never consumes
/// — it only answers "is the peer still there?". The moment the peer
/// vanishes, the owner's output buffers are closed, which unblocks the
/// wedged feeder immediately instead of waiting for a poll that will
/// never come (the standing `Block`-policy disconnect gap).
fn watch_disconnect(socket: TcpStream, shared: Arc<Shared>, owner: OwnerId, stop: Arc<AtomicBool>) {
    let mut byte = [0u8; 1];
    while !stop.load(Ordering::SeqCst) {
        let gone = match socket.peek(&mut byte) {
            Ok(0) => true,
            Ok(_) => false,
            Err(e) => !matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
        };
        if gone {
            shared.metrics.disconnect_reaps.inc();
            shared.rt.read().close_outputs(owner);
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Serve one connection to completion. Any protocol violation ends the
/// session; any transport error ends it silently (the peer is gone).
fn serve_session(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // The tick: bounds both the session's reads and the watcher's peeks
    // (a cloned socket shares its options with the original).
    let _ = stream.set_read_timeout(Some(READ_TICK));
    shared.metrics.sessions_total.inc();
    shared.metrics.sessions.inc();
    serve_session_inner(shared, CountingStream::new(stream, &shared.metrics));
    shared.metrics.sessions.dec();
}

fn serve_session_inner(shared: &Arc<Shared>, mut stream: CountingStream) {
    let mut buf = Vec::new();

    // Handshake: the first frame must be Hello (under the same idle
    // deadline and drain checks as every later read).
    match next_frame(&mut stream, &mut buf, shared) {
        Step::Frame(Frame::Hello { .. }) => {
            let ack = Frame::HelloAck {
                server: concat!("streamsum-server/", env!("CARGO_PKG_VERSION")).into(),
                protocol: WIRE_VERSION,
            };
            if write_frame(&mut stream, &ack).is_err() {
                return;
            }
        }
        Step::Frame(_) => {
            let _ = write_frame(
                &mut stream,
                &error_frame(ErrorCode::Protocol, "expected Hello".into()),
            );
            return;
        }
        // A malformed first frame — most importantly a WIRE_VERSION
        // mismatch — gets an explanatory Error frame, not a silent
        // close, so mixed-version deployments fail loudly (§9's rule).
        Step::Wire(e) => {
            shared.metrics.wire_errors.inc();
            let _ = write_frame(
                &mut stream,
                &error_frame(ErrorCode::Protocol, e.to_string()),
            );
            return;
        }
        Step::Drain => {
            shared.metrics.goaways.inc();
            let _ = write_frame(&mut stream, &goaway_frame(shared));
            return;
        }
        Step::Idle => {
            shared.metrics.idle_timeouts.inc();
            let _ = write_frame(&mut stream, &idle_timeout_frame(shared));
            return;
        }
        Step::Gone => return,
    }

    let mut session = Session {
        owner: shared.rt.write().new_owner(),
        queries: Vec::new(),
    };

    // Register the drain seat and start the disconnect watcher — both
    // need a socket clone; without one the session still works, it just
    // cannot be force-closed or reaped early.
    let seat_id = shared.next_seat.fetch_add(1, Ordering::SeqCst);
    let watcher_stop = Arc::new(AtomicBool::new(false));
    let mut watcher = None;
    if let Ok(socket) = stream.get_ref().try_clone() {
        shared.seats.lock().unwrap().insert(
            seat_id,
            Seat {
                socket,
                owner: session.owner,
            },
        );
    }
    if let Ok(socket) = stream.get_ref().try_clone() {
        let (shared, owner, stop) = (shared.clone(), session.owner, watcher_stop.clone());
        watcher = std::thread::Builder::new()
            .name("sgs-session-watch".into())
            .spawn(move || watch_disconnect(socket, shared, owner, stop))
            .ok();
    }

    loop {
        let frame = match next_frame(&mut stream, &mut buf, shared) {
            Step::Frame(frame) => frame,
            Step::Drain => {
                shared.metrics.goaways.inc();
                let _ = write_frame(&mut stream, &goaway_frame(shared));
                break;
            }
            Step::Idle => {
                shared.metrics.idle_timeouts.inc();
                let _ = write_frame(&mut stream, &idle_timeout_frame(shared));
                break;
            }
            // Garbage gets a best-effort typed explanation; a vanished
            // peer gets nothing. Session over either way.
            Step::Wire(e) => {
                shared.metrics.wire_errors.inc();
                let _ = write_frame(
                    &mut stream,
                    &error_frame(ErrorCode::Protocol, e.to_string()),
                );
                break;
            }
            Step::Gone => break,
        };
        let goodbye = matches!(frame, Frame::Goodbye);
        let reply = dispatch(shared, &mut session, frame);
        let fatal = matches!(
            reply,
            Frame::Error {
                code: ErrorCode::Protocol,
                ..
            }
        );
        if write_frame(&mut stream, &reply).is_err() || goodbye || fatal {
            break;
        }
    }

    // Stop the watcher before teardown so a peer that disappears right
    // now (after the session already decided to close) is not counted
    // as a reap of a live session.
    watcher_stop.store(true, Ordering::SeqCst);
    if let Some(watcher) = watcher {
        let _ = watcher.join();
    }

    // Teardown: cancel the session's live queries so a vanished analyst
    // does not leak running pipelines. Archived history stays. Begin
    // every cancel under one short write-lock hold, then wait for the
    // drains with the lock released — a big backlog must not stall the
    // other sessions (and beginning all stops before waiting on any is
    // the same no-deadlock order as Runtime::shutdown).
    let pending: Vec<_> = {
        let mut rt = shared.rt.write();
        rt.queries_for(session.owner)
            .into_iter()
            .filter(|d| d.state != QueryState::Cancelled)
            .filter_map(|d| rt.cancel_begin(d.id).ok())
            .collect()
    };
    for cancel in pending {
        let _ = cancel.wait();
    }
    // Evict the dead entries (and their undrained output buffers): a
    // server living through thousands of connect/feed/disconnect cycles
    // must not accumulate registry garbage per past session.
    shared.rt.write().evict_cancelled(session.owner);
    // Leave the seat last: an empty registry tells the drain that no
    // session state remains in the runtime.
    shared.seats.lock().unwrap().remove(&seat_id);
}

/// The frame a draining server sends in place of any further response.
fn goaway_frame(shared: &Shared) -> Frame {
    Frame::GoAway {
        reason: "server draining".into(),
        drain_millis: shared.drain_millis.load(Ordering::SeqCst),
    }
}

/// The typed farewell of an idle-timeout close.
fn idle_timeout_frame(shared: &Shared) -> Frame {
    let window = shared.limits.idle_timeout.unwrap_or_default();
    error_frame(
        ErrorCode::Protocol,
        format!("idle timeout: no complete request within {window:?}"),
    )
}

/// Execute one request frame against the shared runtime.
fn dispatch(shared: &Shared, session: &mut Session, frame: Frame) -> Frame {
    shared.metrics.count_frame(frame.kind());
    match frame {
        Frame::Hello { .. } => error_frame(ErrorCode::Protocol, "duplicate Hello".into()),
        Frame::Submit { text } => {
            // Plan first under the read lock; only a DETECT registration
            // needs the exclusive write lock. Matching statements run
            // entirely under the read side, so one analyst's (possibly
            // long) history scan never stalls other sessions.
            let planned = shared.rt.read().plan(&text);
            match planned {
                Ok(sgs_runtime::QueryPlan::Detect(plan)) => {
                    let mut rt = shared.rt.write();
                    // Admission control, checked and enforced under the
                    // same write-lock hold as the registration so two
                    // racing submits cannot both squeeze under the cap.
                    if let Some(max) = shared.limits.owner_max_queries {
                        let live = rt
                            .queries_for(session.owner)
                            .iter()
                            .filter(|d| d.state != QueryState::Cancelled)
                            .count();
                        if live >= max {
                            shared.metrics.quota_rejections.inc();
                            return error_frame(
                                ErrorCode::QuotaExceeded,
                                format!(
                                    "session holds {live} live queries (limit {max}); \
                                     cancel one to free a slot"
                                ),
                            );
                        }
                    }
                    match rt.submit_detect_for(session.owner, *plan) {
                        Ok(id) => {
                            session.queries.push(id);
                            Frame::Registered {
                                query: (session.queries.len() - 1) as u64,
                            }
                        }
                        Err(e) => runtime_error_frame(&e),
                    }
                }
                Ok(sgs_runtime::QueryPlan::Match(plan)) => {
                    match shared.rt.read().run_match(&plan) {
                        Ok(outcome) => Frame::Matches {
                            candidates: outcome.candidates as u64,
                            refined: outcome.refined as u64,
                            matches: outcome
                                .matches
                                .iter()
                                .map(|m| sgs_wire::WireMatch {
                                    pattern: m.id.0,
                                    distance: m.distance,
                                })
                                .collect(),
                        },
                        Err(e) => runtime_error_frame(&e),
                    }
                }
                Err(e) => runtime_error_frame(&e),
            }
        }
        Frame::Feed { stream, points } => feed(shared, session, &stream, &points),
        Frame::Poll { query, max } => {
            let local = query;
            match session.resolve(local) {
                Ok(id) => {
                    let rt = shared.rt.read();
                    match rt.poll_batch(id, max as usize) {
                        Ok(mut batch) => {
                            // Page by encoded size: a window that would
                            // push the page past the budget goes back
                            // into the buffer for the client's next page
                            // request, so a response only ever exceeds
                            // POLL_PAGE_BYTES when a *single* window
                            // does — and one beyond the protocol's frame
                            // cap is refused as a typed error rather
                            // than shipped as an undecodable frame.
                            let mut windows = Vec::new();
                            let mut bytes = 0usize;
                            while let Some((window, clusters)) = batch.next() {
                                let w = WireWindow { window, clusters };
                                let cost = w.encoded_len();
                                if cost > sgs_wire::MAX_FRAME_LEN - 1024 {
                                    batch.put_back(w.window, w.clusters);
                                    if windows.is_empty() {
                                        return error_frame(
                                            ErrorCode::Internal,
                                            format!(
                                                "window {} encodes to {cost} bytes, beyond \
                                                 the frame cap — cancel the query to discard it",
                                                w.window.0
                                            ),
                                        );
                                    }
                                    break;
                                }
                                if !windows.is_empty() && bytes + cost > POLL_PAGE_BYTES {
                                    batch.put_back(w.window, w.clusters);
                                    break;
                                }
                                bytes += cost;
                                windows.push(w);
                                if bytes >= POLL_PAGE_BYTES {
                                    break;
                                }
                            }
                            Frame::Windows {
                                query: local,
                                windows,
                            }
                        }
                        Err(e) => runtime_error_frame(&e),
                    }
                }
                Err(e) => e,
            }
        }
        Frame::StatsReq { query } => match session.resolve(query) {
            Ok(id) => {
                let rt = shared.rt.read();
                match (rt.state(id), rt.stats(id), rt.text_of(id)) {
                    (Ok(state), Ok(stats), Ok(text)) => Frame::StatsReply(WireQuery {
                        query,
                        state: wire_state(state),
                        text: text.to_string(),
                        stats: wire_stats(&stats),
                    }),
                    (Err(e), ..) | (_, Err(e), _) | (.., Err(e)) => runtime_error_frame(&e),
                }
            }
            Err(e) => e,
        },
        Frame::ListQueries => {
            let rt = shared.rt.read();
            let descriptors = rt.queries_for(session.owner);
            Frame::Queries(
                session
                    .queries
                    .iter()
                    .enumerate()
                    .filter_map(|(local, id)| {
                        descriptors
                            .iter()
                            .find(|d| d.id == *id)
                            .map(|d| describe(local as u64, d))
                    })
                    .collect(),
            )
        }
        Frame::Pause { query } => lifecycle(shared, session, query, |rt, id| rt.pause(id)),
        Frame::Resume { query } => lifecycle(shared, session, query, |rt, id| rt.resume(id)),
        Frame::Cancel { query } => match session.resolve(query) {
            // Queue the stop under the write lock, but wait for the
            // backlog drain with the lock released — a cancel of a
            // deeply-queued query must not stall other sessions. The
            // begun cancel is bound first so the guard (a temporary in
            // the expression) is dropped before `wait()` blocks.
            Ok(id) => {
                let begun = shared.rt.write().cancel_begin(id);
                match begun.and_then(|pending| pending.wait()) {
                    Ok(report) => Frame::Report {
                        query,
                        stats: wire_stats(&report.stats),
                    },
                    Err(e) => runtime_error_frame(&e),
                }
            }
            Err(e) => e,
        },
        Frame::Bind { name, sgs } => {
            // The wire decoder checks structure only; enforce the full
            // Sgs invariants before the summary enters the shared
            // binding namespace every session's matching reads.
            if let Err(e) = sgs.validate() {
                return error_frame(ErrorCode::Plan, format!("invalid cluster summary: {e}"));
            }
            shared.rt.write().bind_cluster(&name, sgs);
            Frame::OkAck
        }
        Frame::Quiesce => {
            // Barrier over this session's queries only (its feeds target
            // nothing else). Snapshot under the lock, wait without it —
            // the barrier can take as long as the queued work.
            let feeder = shared.rt.read().feeder(Some(session.owner), None);
            feeder.quiesce();
            Frame::OkAck
        }
        Frame::Goodbye => Frame::OkAck,
        Frame::MetricsReq => Frame::MetricsReply(
            sgs_obs::registry()
                .snapshot()
                .into_iter()
                .map(|m| WireMetric {
                    name: m.name,
                    value: match m.value {
                        sgs_obs::MetricValue::Counter(v) => WireMetricValue::Counter(v),
                        sgs_obs::MetricValue::Gauge(v) => WireMetricValue::Gauge(v),
                        sgs_obs::MetricValue::Histogram(h) => WireMetricValue::Histogram {
                            count: h.count,
                            sum: h.sum,
                            max: h.max,
                            p50: h.p50,
                            p95: h.p95,
                            p99: h.p99,
                        },
                    },
                })
                .collect(),
        ),
        // Response kinds are not requests.
        other => error_frame(
            ErrorCode::Protocol,
            format!("frame kind {:#04x} is not a request", other.kind()),
        ),
    }
}

/// `Feed` dispatch: validate against the catalog, then route through the
/// bounded input queues of this session's queries (blocking = the
/// backpressure path; the ack is withheld until the batch is queued).
///
/// The runtime lock is held only for validation and the
/// [`Runtime::feeder`] snapshot, **not** across the potentially long
/// backpressure block — otherwise one stalled session would wedge every
/// write operation (submits, teardowns, even new sessions' handshakes)
/// server-wide.
fn feed(shared: &Shared, session: &Session, stream: &str, points: &[Point]) -> Frame {
    let feeder = {
        let rt = shared.rt.read();
        let Some(dim) = rt.planner().catalog().dim_of(stream) else {
            return error_frame(
                ErrorCode::UnknownStream,
                format!("stream {stream:?} is not in the catalog"),
            );
        };
        if let Some(bad) = points.iter().find(|p| p.dim() != dim) {
            return error_frame(
                ErrorCode::Dimension,
                format!(
                    "stream {stream:?} is {dim}-dimensional, got a {}-dimensional point",
                    bad.dim()
                ),
            );
        }
        // Admission control (DESIGN.md §12): refuse the batch *whole*
        // before anything is enqueued, so a rejected Feed has no
        // partial effect. Input-side: the points about to be queued
        // (charged at the runtime's per-point queue cost) must fit
        // under the owner's queued-input cap. Output-side: a session
        // sitting on too many unpolled windows must poll before it may
        // feed more — the non-blocking counterpart of `Block`.
        if let Some(max) = shared.limits.owner_max_queue_bytes {
            let incoming: usize = points.iter().map(|p| 16 + 8 * p.dim()).sum();
            let queued = rt.input_queue_bytes_for(session.owner);
            if queued.saturating_add(incoming) > max {
                shared.metrics.quota_rejections.inc();
                return error_frame(
                    ErrorCode::QuotaExceeded,
                    format!(
                        "feeding {incoming} bytes atop {queued} queued would pass the \
                         owner's input-queue limit of {max} bytes; let processing drain \
                         and retry"
                    ),
                );
            }
        }
        if let Some(max) = shared.limits.owner_max_buffer_bytes {
            let buffered = rt.output_bytes_for(session.owner);
            if buffered > max {
                shared.metrics.quota_rejections.inc();
                return error_frame(
                    ErrorCode::QuotaExceeded,
                    format!(
                        "{buffered} bytes of completed windows are waiting unpolled \
                         (limit {max}); poll to release the quota"
                    ),
                );
            }
        }
        rt.feeder(Some(session.owner), Some(stream))
    };
    {
        let _block = sgs_obs::SpanGuard::new(&shared.metrics.feed_block_nanos);
        feeder.push_batch(points);
    }
    Frame::OkAck
}

fn lifecycle(
    shared: &Shared,
    session: &Session,
    local: u64,
    op: impl FnOnce(&mut Runtime, QueryId) -> Result<(), RuntimeError>,
) -> Frame {
    match session.resolve(local) {
        Ok(id) => match op(&mut shared.rt.write(), id) {
            Ok(()) => Frame::OkAck,
            Err(e) => runtime_error_frame(&e),
        },
        Err(e) => e,
    }
}

// ---------------------------------------------------------------------------
// Runtime → wire mappings
// ---------------------------------------------------------------------------

fn wire_state(state: QueryState) -> WireQueryState {
    match state {
        QueryState::Running => WireQueryState::Running,
        QueryState::Paused => WireQueryState::Paused,
        QueryState::Cancelled => WireQueryState::Cancelled,
        QueryState::Failed => WireQueryState::Failed,
    }
}

fn wire_stats(stats: &QueryStats) -> WireStats {
    WireStats {
        points: stats.points,
        windows: stats.windows,
        clusters: stats.clusters,
        windows_dropped: stats.windows_dropped,
        archived: stats.archived,
        archive_bytes: stats.archive_bytes as u64,
        busy_nanos: stats.busy_nanos,
        error: stats.error.clone(),
    }
}

fn describe(local: u64, descriptor: &QueryDescriptor) -> WireQuery {
    WireQuery {
        query: local,
        state: wire_state(descriptor.state),
        text: descriptor.text.clone(),
        stats: wire_stats(&descriptor.stats),
    }
}

fn error_frame(code: ErrorCode, message: String) -> Frame {
    Frame::Error { code, message }
}

fn runtime_error_frame(e: &RuntimeError) -> Frame {
    let code = match e {
        RuntimeError::Plan(_) | RuntimeError::Query(_) => ErrorCode::Plan,
        RuntimeError::UnknownQuery(_) => ErrorCode::UnknownQuery,
        RuntimeError::UnknownBinding(_) => ErrorCode::UnknownBinding,
        RuntimeError::InvalidTransition { .. } | RuntimeError::Disconnected(_) => {
            ErrorCode::InvalidTransition
        }
        RuntimeError::Archive(_) => ErrorCode::Internal,
    };
    error_frame(code, e.to_string())
}
