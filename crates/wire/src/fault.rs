//! Deterministic transport fault injection (`test-util` feature only).
//!
//! [`FaultTransport`] is to the wire layer what `sgs-archive`'s
//! `FaultFs` is to the storage layer: a wrapper over any
//! `Read + Write` transport that injects one fault at an **exact,
//! enumerable byte offset**, so a chaos suite can sweep every fault
//! point through every client↔server exchange deterministically.
//!
//! Fault kinds (per direction, independently):
//!
//! * [`FaultKind::Cut`] — the transport dies at the offset: the bytes
//!   before it flow normally (so a write crossing the boundary is a
//!   **partial write**), then reads see EOF and writes fail with
//!   `BrokenPipe`. Placed mid-frame this is a torn frame; on a frame
//!   boundary it is an abrupt close.
//! * [`FaultKind::CorruptBit`] — one bit of the byte at the offset is
//!   flipped (which bit depends on the offset, so sweeps exercise
//!   different bit positions); traffic otherwise continues. Hits the
//!   length prefix, version, kind, and every body byte as the sweep
//!   advances.
//! * [`FaultKind::Stall`] — the transport goes silent at the offset for
//!   the given duration (long enough to trip the peer's deadline), then
//!   dies like `Cut`.
//!
//! Orthogonally, [`FaultTransport::with_write_chop`] limits every write
//! call to a few bytes, exercising the peer's and the io layer's
//! short-write handling on the success path.

use std::io::{self, Read, Write};
use std::time::Duration;

/// What happens when a direction's byte cursor reaches [`Fault::at`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Die: EOF on reads, `BrokenPipe` on writes, from the offset on.
    Cut,
    /// Flip bit `at % 8` of the byte at the offset, then continue.
    CorruptBit,
    /// Go silent for the duration, then die like [`FaultKind::Cut`].
    Stall(Duration),
}

/// One injected fault: a byte offset (counted per direction from
/// transport creation) and what happens there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// Byte offset at which the fault fires.
    pub at: u64,
    /// The failure mode.
    pub kind: FaultKind,
}

/// A `Read + Write` transport with at most one injected fault per
/// direction. See the module docs for semantics.
pub struct FaultTransport<T> {
    inner: T,
    read_fault: Option<Fault>,
    write_fault: Option<Fault>,
    read_pos: u64,
    write_pos: u64,
    write_chop: Option<usize>,
    stalled_read: bool,
    stalled_write: bool,
}

impl<T> FaultTransport<T> {
    /// Wrap a transport with no faults (transparent passthrough).
    pub fn new(inner: T) -> Self {
        FaultTransport {
            inner,
            read_fault: None,
            write_fault: None,
            read_pos: 0,
            write_pos: 0,
            write_chop: None,
            stalled_read: false,
            stalled_write: false,
        }
    }

    /// Inject a fault on the **read** (inbound) direction.
    pub fn with_read_fault(mut self, fault: Fault) -> Self {
        self.read_fault = Some(fault);
        self
    }

    /// Inject a fault on the **write** (outbound) direction.
    pub fn with_write_fault(mut self, fault: Fault) -> Self {
        self.write_fault = Some(fault);
        self
    }

    /// Cap every write call at `n` bytes, forcing the caller's
    /// short-write loop to do real work.
    pub fn with_write_chop(mut self, n: usize) -> Self {
        self.write_chop = Some(n.max(1));
        self
    }

    /// Bytes read so far (inbound cursor).
    pub fn read_pos(&self) -> u64 {
        self.read_pos
    }

    /// Bytes written so far (outbound cursor).
    pub fn write_pos(&self) -> u64 {
        self.write_pos
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &T {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

/// Bit flipped by [`FaultKind::CorruptBit`] at offset `at`.
fn flip_mask(at: u64) -> u8 {
    1u8 << (at % 8)
}

impl<T: Read> Read for FaultTransport<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let fault = match self.read_fault {
            None => {
                let n = self.inner.read(buf)?;
                self.read_pos += n as u64;
                return Ok(n);
            }
            Some(f) => f,
        };
        match fault.kind {
            FaultKind::CorruptBit => {
                let n = self.inner.read(buf)?;
                let (start, end) = (self.read_pos, self.read_pos + n as u64);
                if (start..end).contains(&fault.at) {
                    buf[(fault.at - start) as usize] ^= flip_mask(fault.at);
                }
                self.read_pos = end;
                Ok(n)
            }
            FaultKind::Cut | FaultKind::Stall(_) => {
                let left = fault.at.saturating_sub(self.read_pos);
                if left == 0 {
                    if let FaultKind::Stall(d) = fault.kind {
                        if !self.stalled_read {
                            self.stalled_read = true;
                            std::thread::sleep(d);
                        }
                    }
                    return Ok(0); // simulated EOF from the fault point on
                }
                let cap = (left.min(buf.len() as u64)) as usize;
                let n = self.inner.read(&mut buf[..cap])?;
                self.read_pos += n as u64;
                Ok(n)
            }
        }
    }
}

impl<T: Write> Write for FaultTransport<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let chop = self.write_chop.unwrap_or(usize::MAX);
        let buf = &buf[..buf.len().min(chop)];
        if buf.is_empty() {
            return Ok(0);
        }
        let fault = match self.write_fault {
            None => {
                let n = self.inner.write(buf)?;
                self.write_pos += n as u64;
                return Ok(n);
            }
            Some(f) => f,
        };
        match fault.kind {
            FaultKind::CorruptBit => {
                let (start, end) = (self.write_pos, self.write_pos + buf.len() as u64);
                let n = if (start..end).contains(&fault.at) {
                    let mut copy = buf.to_vec();
                    copy[(fault.at - start) as usize] ^= flip_mask(fault.at);
                    self.inner.write(&copy)?
                } else {
                    self.inner.write(buf)?
                };
                self.write_pos += n as u64;
                Ok(n)
            }
            FaultKind::Cut | FaultKind::Stall(_) => {
                let left = fault.at.saturating_sub(self.write_pos);
                if left == 0 {
                    if let FaultKind::Stall(d) = fault.kind {
                        if !self.stalled_write {
                            self.stalled_write = true;
                            std::thread::sleep(d);
                        }
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "injected transport cut",
                    ));
                }
                // A write crossing the boundary lands partially: the
                // bytes before the fault reach the peer.
                let cap = (left.min(buf.len() as u64)) as usize;
                let n = self.inner.write(&buf[..cap])?;
                self.write_pos += n as u64;
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use crate::io::{read_frame, write_frame, RecvError};
    use crate::WireError;

    fn hello() -> Frame {
        Frame::Hello {
            client: "chaos".into(),
            token: None,
        }
    }

    #[test]
    fn passthrough_and_chopped_writes_roundtrip() {
        let mut t = FaultTransport::new(Vec::new()).with_write_chop(1);
        write_frame(&mut t, &hello()).unwrap();
        let bytes = t.into_inner();
        let mut rd = FaultTransport::new(io::Cursor::new(bytes));
        assert_eq!(read_frame(&mut rd).unwrap(), hello());
    }

    #[test]
    fn cut_mid_frame_reads_as_unexpected_eof() {
        let bytes = hello().encode();
        for at in 1..bytes.len() as u64 {
            let mut rd =
                FaultTransport::new(io::Cursor::new(bytes.clone())).with_read_fault(Fault {
                    at,
                    kind: FaultKind::Cut,
                });
            match read_frame(&mut rd) {
                Err(RecvError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
                other => panic!("cut at {at}: expected UnexpectedEof, got {other:?}"),
            }
        }
    }

    #[test]
    fn cut_on_a_frame_boundary_is_a_clean_close() {
        let bytes = hello().encode();
        let mut rd = FaultTransport::new(io::Cursor::new(bytes.clone())).with_read_fault(Fault {
            at: bytes.len() as u64,
            kind: FaultKind::Cut,
        });
        assert_eq!(read_frame(&mut rd).unwrap(), hello());
        assert!(matches!(read_frame(&mut rd), Err(RecvError::Closed)));
    }

    #[test]
    fn corrupting_the_version_byte_is_a_typed_wire_error() {
        let bytes = hello().encode();
        // Offset 4 is the version byte; bit 4 % 8 = 0x10 flips 3 → 0x13.
        let mut rd = FaultTransport::new(io::Cursor::new(bytes)).with_read_fault(Fault {
            at: 4,
            kind: FaultKind::CorruptBit,
        });
        assert!(matches!(
            read_frame(&mut rd),
            Err(RecvError::Wire(WireError::Version(_)))
        ));
    }

    #[test]
    fn corrupting_the_length_prefix_cannot_balloon_memory() {
        let bytes = hello().encode();
        // Offset 3 is the length prefix's high byte: flipping bit 3 of
        // it announces a ~128 MiB payload, above MAX_FRAME_LEN.
        let mut rd = FaultTransport::new(io::Cursor::new(bytes)).with_read_fault(Fault {
            at: 3,
            kind: FaultKind::CorruptBit,
        });
        assert!(matches!(
            read_frame(&mut rd),
            Err(RecvError::Wire(WireError::Oversized { .. }))
        ));
    }

    #[test]
    fn write_cut_is_a_partial_write_then_broken_pipe() {
        let mut t = FaultTransport::new(Vec::new()).with_write_fault(Fault {
            at: 3,
            kind: FaultKind::Cut,
        });
        let err = write_frame(&mut t, &hello()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(t.write_pos(), 3);
        assert_eq!(t.get_ref().len(), 3);
    }
}
