//! The Pattern Base (§7.1) and the cluster matching query execution (§7.2).
//!
//! Archived SGSs are organized under two indexes:
//!
//! * the **locational feature index** — an R-tree over cluster MBRs,
//!   driving position-sensitive candidate search, and
//! * the **non-locational feature index** — a grid over the 4-d feature
//!   vector (volume, core-cell count, avg density, avg connectivity),
//!   driving non-position-sensitive candidate search via the per-dimension
//!   admissible ranges of §7.2.
//!
//! A matching query runs **filter-and-refine**: the index narrows the base
//! to candidates, the cluster-level feature metric discards most of them,
//! and only the survivors pay for the grid-cell-level match (with the
//! anytime alignment search when position-insensitive). [`MatchOutcome`]
//! reports how many candidates reached each phase — the statistic behind
//! the "only 6 % needed the grid-level match" claim of §8.2.

use sgs_core::WindowId;
use sgs_index::{FeatureGrid, RTree, Rect};
use sgs_matching::{
    best_alignment, cluster_distance, feature_ranges, grid_level_distance, MatchConfig,
};
use sgs_summarize::{packed, Sgs};

/// Handle of an archived pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternId(pub u64);

/// One archived cluster summary.
#[derive(Clone, Debug)]
pub struct ArchivedPattern {
    /// Stable handle.
    pub id: PatternId,
    /// Window the cluster was extracted from.
    pub window: WindowId,
    /// The archived summary (basic or coarsened resolution).
    pub sgs: Sgs,
    /// Cached feature vector (volume, cores, density, connectivity).
    pub features: [f64; 4],
}

/// One match found by a cluster matching query.
#[derive(Clone, Debug, PartialEq)]
pub struct MatchResult {
    /// The archived pattern.
    pub id: PatternId,
    /// Final (grid-level) distance to the query cluster.
    pub distance: f64,
}

/// Result of a matching query, with filter-phase statistics.
#[derive(Clone, Debug, Default)]
pub struct MatchOutcome {
    /// Matches with distance ≤ threshold, sorted ascending by distance.
    pub matches: Vec<MatchResult>,
    /// Candidates produced by the index search.
    pub candidates: usize,
    /// Candidates that survived the cluster-level filter and paid for the
    /// grid-level match.
    pub refined: usize,
}

/// The archive of extracted cluster summaries with its two feature indexes.
#[derive(Debug)]
pub struct PatternBase {
    patterns: Vec<ArchivedPattern>,
    locational: RTree<u64>,
    non_locational: FeatureGrid<u64>,
}

impl Default for PatternBase {
    fn default() -> Self {
        Self::new()
    }
}

impl PatternBase {
    /// Empty base. Feature-grid bucket widths follow the scale of typical
    /// summaries (tens of cells, a handful of cores, unit-scale densities).
    pub fn new() -> Self {
        PatternBase {
            patterns: Vec::new(),
            locational: RTree::new(),
            non_locational: FeatureGrid::new(vec![16.0, 8.0, 2.0, 1.0]),
        }
    }

    /// Number of archived patterns.
    #[inline]
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the base is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Archive a summary; returns its handle. Empty summaries are rejected.
    pub fn insert(&mut self, sgs: Sgs, window: WindowId) -> Option<PatternId> {
        let mbr = sgs.mbr()?;
        let id = PatternId(self.patterns.len() as u64);
        let features = sgs.features();
        self.locational.insert(mbr, id.0);
        self.non_locational.insert(&features, id.0);
        self.patterns.push(ArchivedPattern {
            id,
            window,
            sgs,
            features,
        });
        Some(id)
    }

    /// Look up an archived pattern.
    pub fn get(&self, id: PatternId) -> Option<&ArchivedPattern> {
        self.patterns.get(id.0 as usize)
    }

    /// Iterate over all archived patterns.
    pub fn iter(&self) -> impl Iterator<Item = &ArchivedPattern> {
        self.patterns.iter()
    }

    /// Total bytes of the archived summaries in packed form (the §8.2
    /// storage accounting).
    pub fn archived_bytes(&self) -> usize {
        self.patterns
            .iter()
            .map(|p| packed::archived_bytes(&p.sgs))
            .sum()
    }

    /// Bytes of in-memory index structures (R-tree + feature grid).
    pub fn index_bytes(&self) -> usize {
        self.locational.heap_bytes() + self.non_locational.heap_bytes()
    }

    /// Execute a cluster matching query (§7.2) for `query` under `config`.
    pub fn match_query(&self, query: &Sgs, config: &MatchConfig) -> MatchOutcome {
        let mut outcome = MatchOutcome::default();
        let Some(query_mbr) = query.mbr() else {
            return outcome;
        };
        let query_features = query.features();

        // ---- Filter phase: index-driven candidate search.
        let mut candidate_ids: Vec<u64> = Vec::new();
        if config.position_sensitive {
            let mut hits: Vec<&u64> = Vec::new();
            self.locational.search(&query_mbr, &mut hits);
            candidate_ids.extend(hits.into_iter().copied());
        } else {
            let ranges = feature_ranges(&query_features, &config.weights, config.threshold);
            let lo: Vec<f64> = ranges.iter().map(|r| r.0).collect();
            // The feature grid needs finite bounds; cap unbounded ranges by
            // the maximum archived feature value per dimension.
            let caps = self.feature_caps();
            let hi: Vec<f64> = ranges
                .iter()
                .zip(caps.iter())
                .map(|(r, cap)| if r.1.is_finite() { r.1 } else { *cap })
                .collect();
            let mut hits: Vec<&u64> = Vec::new();
            self.non_locational.range_search(&lo, &hi, &mut hits);
            candidate_ids.extend(hits.into_iter().copied());
        }
        candidate_ids.sort_unstable();
        candidate_ids.dedup();
        outcome.candidates = candidate_ids.len();

        // ---- Cluster-level filter, then grid-level refine.
        for id in candidate_ids {
            let pattern = &self.patterns[id as usize];
            let coarse = cluster_distance(&pattern.sgs, query, config);
            if coarse > config.threshold {
                continue;
            }
            outcome.refined += 1;
            let distance = if config.position_sensitive {
                let zero = vec![0i32; query.dim];
                grid_level_distance(query, &pattern.sgs, &zero)
            } else {
                best_alignment(query, &pattern.sgs, config.alignment_budget).distance
            };
            if distance <= config.threshold {
                outcome.matches.push(MatchResult {
                    id: pattern.id,
                    distance,
                });
            }
        }
        outcome
            .matches
            .sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
        outcome
    }

    /// Maximum archived value per feature dimension (used to bound open
    /// search ranges).
    fn feature_caps(&self) -> [f64; 4] {
        let mut caps = [1.0f64; 4];
        for p in &self.patterns {
            for (cap, feature) in caps.iter_mut().zip(p.features.iter()) {
                *cap = cap.max(*feature);
            }
        }
        caps
    }

    /// Brute-force matching (no indexes, every pattern refined) — the
    /// correctness oracle for `match_query` and the baseline that shows
    /// what the filter saves.
    pub fn match_query_exhaustive(&self, query: &Sgs, config: &MatchConfig) -> MatchOutcome {
        let mut outcome = MatchOutcome {
            candidates: self.patterns.len(),
            ..Default::default()
        };
        for pattern in &self.patterns {
            outcome.refined += 1;
            let distance = if config.position_sensitive {
                if sgs_matching::metric::location_distance(query, &pattern.sgs) > 0.0 {
                    continue;
                }
                let zero = vec![0i32; query.dim];
                grid_level_distance(query, &pattern.sgs, &zero)
            } else {
                best_alignment(query, &pattern.sgs, config.alignment_budget).distance
            };
            if distance <= config.threshold {
                outcome.matches.push(MatchResult {
                    id: pattern.id,
                    distance,
                });
            }
        }
        outcome
            .matches
            .sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
        outcome
    }

    /// All archived MBRs overlapping `rect` (diagnostic / visualization).
    pub fn overlapping(&self, rect: &Rect) -> Vec<PatternId> {
        let mut hits: Vec<&u64> = Vec::new();
        self.locational.search(rect, &mut hits);
        let mut ids: Vec<PatternId> = hits.into_iter().map(|&i| PatternId(i)).collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_core::GridGeometry;
    use sgs_summarize::MemberSet;

    fn blob(x0: f64, y0: f64, n: usize) -> Sgs {
        let cores: Vec<Box<[f64]>> = (0..n)
            .map(|i| {
                vec![
                    x0 + 0.05 + (i % 6) as f64 * 0.3,
                    y0 + 0.05 + (i / 6) as f64 * 0.3,
                ]
                .into()
            })
            .collect();
        Sgs::from_members(&MemberSet::new(cores, vec![]), &GridGeometry::basic(2, 1.0))
    }

    fn base_with(patterns: Vec<Sgs>) -> PatternBase {
        let mut base = PatternBase::new();
        for (i, p) in patterns.into_iter().enumerate() {
            base.insert(p, WindowId(i as u64));
        }
        base
    }

    #[test]
    fn insert_and_get() {
        let mut base = PatternBase::new();
        let id = base.insert(blob(0.0, 0.0, 10), WindowId(3)).unwrap();
        assert_eq!(base.len(), 1);
        let p = base.get(id).unwrap();
        assert_eq!(p.window, WindowId(3));
        assert_eq!(p.features, p.sgs.features());
    }

    #[test]
    fn empty_summary_rejected() {
        let mut base = PatternBase::new();
        let empty = Sgs {
            dim: 2,
            side: 1.0,
            level: 0,
            cells: vec![],
        };
        assert!(base.insert(empty, WindowId(0)).is_none());
    }

    #[test]
    fn position_sensitive_match_finds_overlapping_twin() {
        let side = GridGeometry::basic(2, 1.0).side();
        let base = base_with(vec![
            blob(0.0, 0.0, 12),
            blob(50.0 * side, 0.0, 12), // same shape far away
            blob(0.0, 40.0 * side, 30), // different shape far away
        ]);
        let query = blob(0.0, 0.0, 12);
        let cfg = MatchConfig::equal_weights(true, 0.2);
        let out = base.match_query(&query, &cfg);
        assert_eq!(out.matches.len(), 1);
        assert_eq!(out.matches[0].id, PatternId(0));
        assert!(out.matches[0].distance < 1e-9);
    }

    #[test]
    fn non_position_sensitive_finds_translated_twin() {
        let side = GridGeometry::basic(2, 1.0).side();
        let base = base_with(vec![
            blob(50.0 * side, 17.0 * side, 12), // translated twin
            blob(0.0, 40.0 * side, 30),         // decoy, different size
        ]);
        let query = blob(0.0, 0.0, 12);
        let cfg = MatchConfig::equal_weights(false, 0.2);
        let out = base.match_query(&query, &cfg);
        assert_eq!(out.matches.len(), 1);
        assert_eq!(out.matches[0].id, PatternId(0));
        assert!(out.matches[0].distance < 1e-9);
    }

    #[test]
    fn filter_agrees_with_exhaustive_oracle() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let side = GridGeometry::basic(2, 1.0).side();
        let patterns: Vec<Sgs> = (0..60)
            .map(|_| {
                blob(
                    rng.gen_range(0..60) as f64 * side,
                    rng.gen_range(0..60) as f64 * side,
                    rng.gen_range(6..40),
                )
            })
            .collect();
        let base = base_with(patterns);
        let query = blob(12.0 * side, 9.0 * side, 18);
        for ps in [true, false] {
            let cfg = MatchConfig::equal_weights(ps, 0.25);
            let fast = base.match_query(&query, &cfg);
            let slow = base.match_query_exhaustive(&query, &cfg);
            let fast_ids: Vec<PatternId> = fast.matches.iter().map(|m| m.id).collect();
            let slow_ids: Vec<PatternId> = slow.matches.iter().map(|m| m.id).collect();
            assert_eq!(fast_ids, slow_ids, "ps={ps}");
            assert!(fast.candidates <= slow.candidates);
        }
    }

    #[test]
    fn filter_reduces_refine_load() {
        let side = GridGeometry::basic(2, 1.0).side();
        let mut patterns = vec![blob(0.0, 0.0, 12)];
        // Many decoys with very different volume.
        for i in 0..50 {
            patterns.push(blob(i as f64 * 3.0, 30.0 * side, 60));
        }
        let base = base_with(patterns);
        let query = blob(0.0, 0.0, 12);
        let cfg = MatchConfig::equal_weights(false, 0.1);
        let out = base.match_query(&query, &cfg);
        assert!(
            out.refined < base.len() / 2,
            "refined {} of {}",
            out.refined,
            base.len()
        );
        assert_eq!(out.matches[0].id, PatternId(0));
    }

    #[test]
    fn archived_bytes_accounting() {
        let base = base_with(vec![blob(0.0, 0.0, 12), blob(5.0, 5.0, 12)]);
        let expect: usize = base
            .iter()
            .map(|p| sgs_summarize::packed::archived_bytes(&p.sgs))
            .sum();
        assert_eq!(base.archived_bytes(), expect);
        assert!(base.index_bytes() > 0);
    }

    #[test]
    fn overlapping_query() {
        let base = base_with(vec![blob(0.0, 0.0, 12), blob(100.0, 100.0, 12)]);
        let hits = base.overlapping(&Rect::new(vec![-1.0, -1.0], vec![1.0, 1.0]));
        assert_eq!(hits, vec![PatternId(0)]);
    }
}
