//! The streamsum network server: serves the shared multi-query runtime
//! over TCP to any number of `sgs-client` sessions (`DESIGN.md` §9).
//!
//! ```text
//! streamsum-server [--addr 127.0.0.1:7878] [--stream name:dim]...
//!                  [--channel-capacity N] [--output-policy unbounded|block:N|drop-oldest:N]
//!                  [--pool-threads N] [--shards N] [--seed N]
//!                  [--archive-dir PATH] [--archive-budget BYTES]
//!                  [--archive-replacer sieve|clock|lru]
//!                  [--metrics-addr HOST:PORT]
//!                  [--idle-timeout SECS] [--drain-timeout SECS]
//!                  [--owner-max-queries N] [--owner-max-queue-bytes N]
//!                  [--owner-max-buffer-bytes N]
//!                  [--auth-token SECRET | NAME:WEIGHT:SECRET]...
//!                  [--dispatch-threads N]
//! ```
//!
//! With no `--stream` flags the two generator streams are registered:
//! `gmti` (2-d) and `stt` (4-d). The listening line is printed to stdout
//! once the socket is bound (CI waits for it before connecting).
//!
//! `SIGTERM` triggers a graceful drain (`DESIGN.md` §12): the server
//! stops accepting, sends `GoAway` to every session, waits up to
//! `--drain-timeout` for them to finish, force-closes stragglers,
//! checkpoints durable archives, and exits 0.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use sgs_core::{ArchiveRetention, PoolThreads, ReplacementPolicy, ShardCount};
use sgs_runtime::{DurableArchive, OutputPolicy, RuntimeConfig};
use sgs_server::{AuthToken, Server, ServerConfig};

const USAGE: &str = "\
usage: streamsum-server [options]
  --addr HOST:PORT          listen address (default 127.0.0.1:7878; port 0 = OS-assigned)
  --stream NAME:DIM         register a source stream (repeatable; default gmti:2 stt:4)
  --channel-capacity N      per-query bounded input queue, in messages (default 1024)
  --output-policy P         unbounded | block:N | drop-oldest:N (default unbounded)
  --pool-threads N          dedicated scheduler pool of N workers (default: shared auto pool)
  --shards N                extraction shards per query (default 1)
  --seed N                  archiver RNG seed (default 0)
  --archive-dir PATH        persist the shared history there (WAL + checkpoints;
                            recovers on restart; default: memory-only)
  --archive-budget BYTES    retention byte budget — over it, the oldest patterns
                            are coarsened, never dropped (default: unbounded)
  --archive-replacer P      buffer-pool replacement: sieve | clock | lru
                            (default sieve)
  --metrics-addr HOST:PORT  also serve Prometheus text exposition over HTTP
                            there (port 0 = OS-assigned; enables metrics)
  --idle-timeout SECS       close sessions with no complete request for SECS
                            seconds (default: never)
  --drain-timeout SECS      grace window of the SIGTERM drain before stragglers
                            are force-closed (default 10)
  --owner-max-queries N     per-session cap on live queries (default: unlimited)
  --owner-max-queue-bytes N per-session cap on queued-but-unprocessed input
                            bytes; over it, Feed is refused with QuotaExceeded
                            (default: unlimited)
  --owner-max-buffer-bytes N per-session cap on completed-but-unpolled window
                            bytes; over it, Feed is refused until polled
                            (default: unlimited)
  --auth-token SPEC         require Hello to carry one of these shared secrets
                            (repeatable). SPEC is SECRET (weight 1) or
                            NAME:WEIGHT:SECRET to set the principal's
                            fair-share weight. Default: open access
  --dispatch-threads N      workers on the request dispatch pool (default 4)
  --help                    this text";

/// Set (asynchronously, from the signal handler) when SIGTERM arrives.
static TERM: AtomicBool = AtomicBool::new(false);

/// The SIGTERM disposition: an async-signal-safe handler that only
/// stores a flag; a watcher thread does the actual drain. Installed via
/// the platform C library's `signal` (already linked — no new
/// dependency); `SIG_ERR` is ignored because the fallback (no graceful
/// drain, plain process kill) is the pre-signal behavior anyway.
fn install_sigterm_handler() {
    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }
    #[cfg(unix)]
    unsafe {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM: i32 = 15;
        signal(SIGTERM, on_term as *const () as usize);
    }
}

fn main() {
    let config = match parse_args(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(Some(parsed)) => parsed,
        Ok(None) => {
            println!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let (addr, metrics_addr, server_config, drain_timeout) = config;
    let server = match Server::bind(addr.as_str(), server_config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    install_sigterm_handler();
    if let Ok(handle) = server.handle() {
        // The drain watcher: SIGTERM's handler only sets a flag; this
        // thread turns it into a graceful drain. `Server::run` below
        // returns once the drain completes, and main exits 0.
        std::thread::Builder::new()
            .name("sgs-drain-watch".into())
            .spawn(move || loop {
                if TERM.load(Ordering::SeqCst) {
                    println!("streamsum-server draining (SIGTERM, {drain_timeout:?} grace)");
                    let forced = handle.drain(drain_timeout);
                    if forced > 0 {
                        println!("streamsum-server drain force-closed {forced} session(s)");
                    }
                    return;
                }
                std::thread::sleep(Duration::from_millis(100));
            })
            .ok();
    }
    if let Some(metrics_addr) = metrics_addr {
        match sgs_server::spawn_metrics_listener(metrics_addr.as_str()) {
            Ok(bound) => println!("streamsum-server metrics on http://{bound}/metrics"),
            Err(e) => {
                eprintln!("error: cannot bind metrics address {metrics_addr}: {e}");
                std::process::exit(1);
            }
        }
    }
    let streams: Vec<String> = server_config
        .streams
        .iter()
        .map(|(name, dim)| format!("{name} ({dim}-d)"))
        .collect();
    match server.local_addr() {
        Ok(local) => println!(
            "streamsum-server listening on {local} — streams: {}",
            streams.join(", ")
        ),
        Err(_) => println!("streamsum-server listening on {addr}"),
    }
    if let Err(e) = server.run() {
        eprintln!("error: accept loop failed: {e}");
        std::process::exit(1);
    }
}

type Parsed = (String, Option<String>, ServerConfig, Duration);

fn parse_args(args: &[String]) -> Result<Option<Parsed>, String> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut metrics_addr: Option<String> = None;
    let mut runtime = RuntimeConfig::default();
    let mut streams: Vec<(String, usize)> = Vec::new();
    let mut archive_dir: Option<String> = None;
    let mut archive_budget: Option<usize> = None;
    let mut archive_replacer = ReplacementPolicy::Sieve;
    let mut idle_timeout: Option<Duration> = None;
    let mut drain_timeout = Duration::from_secs(10);
    let mut owner_max_queries: Option<usize> = None;
    let mut owner_max_queue_bytes: Option<usize> = None;
    let mut owner_max_buffer_bytes: Option<usize> = None;
    let mut auth_tokens: Vec<AuthToken> = Vec::new();
    let mut dispatch_threads: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--addr" => addr = value("--addr")?,
            "--stream" => {
                let spec = value("--stream")?;
                let (name, dim) = spec
                    .split_once(':')
                    .ok_or_else(|| format!("--stream expects NAME:DIM, got {spec:?}"))?;
                let dim: usize = dim
                    .parse()
                    .map_err(|_| format!("bad dimensionality in {spec:?}"))?;
                if name.is_empty() || dim == 0 {
                    return Err(format!("bad stream spec {spec:?}"));
                }
                streams.push((name.to_string(), dim));
            }
            "--channel-capacity" => {
                runtime.channel_capacity = value("--channel-capacity")?
                    .parse()
                    .map_err(|_| "bad --channel-capacity".to_string())?;
            }
            "--output-policy" => {
                runtime.output_policy = parse_policy(&value("--output-policy")?)?;
            }
            "--pool-threads" => {
                let n: u32 = value("--pool-threads")?
                    .parse()
                    .map_err(|_| "bad --pool-threads".to_string())?;
                runtime.pool_threads = PoolThreads::Fixed(n.max(1));
            }
            "--shards" => {
                let n: u32 = value("--shards")?
                    .parse()
                    .map_err(|_| "bad --shards".to_string())?;
                runtime.default_shards = ShardCount::Fixed(n.max(1));
            }
            "--seed" => {
                runtime.base_seed = value("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?;
            }
            "--metrics-addr" => {
                metrics_addr = Some(value("--metrics-addr")?);
                runtime.metrics = true;
            }
            "--idle-timeout" => {
                let secs: f64 = value("--idle-timeout")?
                    .parse()
                    .map_err(|_| "bad --idle-timeout".to_string())?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err("--idle-timeout must be a positive number of seconds".into());
                }
                idle_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--drain-timeout" => {
                let secs: f64 = value("--drain-timeout")?
                    .parse()
                    .map_err(|_| "bad --drain-timeout".to_string())?;
                if !(secs >= 0.0 && secs.is_finite()) {
                    return Err("--drain-timeout must be a number of seconds".into());
                }
                drain_timeout = Duration::from_secs_f64(secs);
            }
            "--owner-max-queries" => {
                owner_max_queries = Some(
                    value("--owner-max-queries")?
                        .parse()
                        .map_err(|_| "bad --owner-max-queries".to_string())?,
                );
            }
            "--owner-max-queue-bytes" => {
                owner_max_queue_bytes = Some(
                    value("--owner-max-queue-bytes")?
                        .parse()
                        .map_err(|_| "bad --owner-max-queue-bytes".to_string())?,
                );
            }
            "--owner-max-buffer-bytes" => {
                owner_max_buffer_bytes = Some(
                    value("--owner-max-buffer-bytes")?
                        .parse()
                        .map_err(|_| "bad --owner-max-buffer-bytes".to_string())?,
                );
            }
            "--auth-token" => {
                auth_tokens.push(parse_auth_token(&value("--auth-token")?)?);
            }
            "--dispatch-threads" => {
                let n: usize = value("--dispatch-threads")?
                    .parse()
                    .map_err(|_| "bad --dispatch-threads".to_string())?;
                dispatch_threads = Some(n.max(1));
            }
            "--archive-dir" => archive_dir = Some(value("--archive-dir")?),
            "--archive-budget" => {
                archive_budget = Some(
                    value("--archive-budget")?
                        .parse()
                        .map_err(|_| "bad --archive-budget".to_string())?,
                );
            }
            "--archive-replacer" => {
                let spec = value("--archive-replacer")?;
                archive_replacer = match spec.to_ascii_lowercase().as_str() {
                    "sieve" => ReplacementPolicy::Sieve,
                    "clock" => ReplacementPolicy::Clock,
                    "lru" => ReplacementPolicy::Lru,
                    _ => {
                        return Err(format!(
                            "bad --archive-replacer {spec:?} (sieve | clock | lru)"
                        ))
                    }
                };
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    match archive_dir {
        Some(dir) => {
            let mut durable = DurableArchive::at(dir);
            if let Some(budget) = archive_budget {
                durable.config.retention = ArchiveRetention::ByteBudget(budget);
            }
            durable.config.replacement = archive_replacer;
            runtime.durable_archive = Some(durable);
        }
        None if archive_budget.is_some() => {
            return Err("--archive-budget requires --archive-dir".to_string());
        }
        None => {}
    }
    let mut config = ServerConfig {
        runtime,
        idle_timeout,
        owner_max_queries,
        owner_max_queue_bytes,
        owner_max_buffer_bytes,
        auth_tokens,
        ..ServerConfig::default()
    };
    if let Some(n) = dispatch_threads {
        config.dispatch_threads = n;
    }
    if !streams.is_empty() {
        config.streams = streams;
    }
    Ok(Some((addr, metrics_addr, config, drain_timeout)))
}

/// `--auth-token` spec: either a bare `SECRET` (anonymous principal,
/// weight 1) or `NAME:WEIGHT:SECRET`. The secret is everything after
/// the second colon, so secrets may themselves contain colons.
fn parse_auth_token(spec: &str) -> Result<AuthToken, String> {
    if spec.is_empty() {
        return Err("--auth-token secret must be non-empty".into());
    }
    if let Some((name, rest)) = spec.split_once(':') {
        if let Some((weight, secret)) = rest.split_once(':') {
            let weight: u32 = weight
                .parse()
                .map_err(|_| format!("bad weight in --auth-token {spec:?}"))?;
            if name.is_empty() || secret.is_empty() {
                return Err(format!("bad --auth-token {spec:?} (NAME:WEIGHT:SECRET)"));
            }
            return Ok(AuthToken {
                name: name.to_string(),
                secret: secret.to_string(),
                weight: weight.max(1),
            });
        }
        return Err(format!(
            "bad --auth-token {spec:?} (expected SECRET or NAME:WEIGHT:SECRET)"
        ));
    }
    Ok(AuthToken {
        name: "token".to_string(),
        secret: spec.to_string(),
        weight: 1,
    })
}

fn parse_policy(spec: &str) -> Result<OutputPolicy, String> {
    if spec.eq_ignore_ascii_case("unbounded") {
        return Ok(OutputPolicy::Unbounded);
    }
    let parse_cap = |rest: &str, what: &str| -> Result<usize, String> {
        rest.parse::<usize>()
            .map_err(|_| format!("bad capacity in --output-policy {what}"))
    };
    if let Some(rest) = spec.strip_prefix("block:") {
        return Ok(OutputPolicy::Block(parse_cap(rest, spec)?));
    }
    if let Some(rest) = spec.strip_prefix("drop-oldest:") {
        return Ok(OutputPolicy::DropOldest(parse_cap(rest, spec)?));
    }
    Err(format!(
        "bad --output-policy {spec:?} (unbounded | block:N | drop-oldest:N)"
    ))
}
