//! RSP — Random Sampling summarization (§8).
//!
//! Summarizes a cluster by a uniform random sample of its members. To make
//! the comparison fair, the evaluation sizes every RSP to consume **the
//! same memory as the SGS of the same cluster** (§8: "R is always
//! controlled to let its RSP have the same memory consumption with the
//! SGS"). [`Rsp::from_members_with_budget`] implements exactly that
//! contract.

use rand::seq::SliceRandom;
use rand::Rng;
use sgs_core::HeapSize;

use crate::member::MemberSet;

/// A random-sample summary of one cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct Rsp {
    /// Sampled member positions.
    pub sample: Vec<Box<[f64]>>,
    /// Population of the cluster the sample was drawn from.
    pub population: u32,
}

impl Rsp {
    /// Sample `k` members uniformly without replacement (capped at the
    /// population).
    pub fn from_members(members: &MemberSet, k: usize, rng: &mut impl Rng) -> Rsp {
        let mut all: Vec<Box<[f64]>> = members.iter_all().map(Into::into).collect();
        all.shuffle(rng);
        all.truncate(k.min(members.population()));
        // Canonical order so equal samples compare equal irrespective of
        // shuffle order.
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Rsp {
            sample: all,
            population: members.population() as u32,
        }
    }

    /// Sample under a byte budget: the number of samples is
    /// `budget_bytes / (dim * 8)` — the paper's "same memory as SGS" rule.
    pub fn from_members_with_budget(
        members: &MemberSet,
        budget_bytes: usize,
        rng: &mut impl Rng,
    ) -> Rsp {
        let dim = members.dim().max(1);
        let k = budget_bytes / (dim * 8);
        Self::from_members(members, k.max(1), rng)
    }

    /// Number of sampled points.
    #[inline]
    pub fn len(&self) -> usize {
        self.sample.len()
    }

    /// Whether the sample is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sample.is_empty()
    }

    /// Bytes needed to archive the sample.
    pub fn archived_bytes(&self) -> usize {
        let dim = self.sample.first().map_or(0, |s| s.len());
        self.sample.len() * dim * 8 + 4
    }
}

impl HeapSize for Rsp {
    fn heap_size(&self) -> usize {
        self.sample.capacity() * core::mem::size_of::<Box<[f64]>>()
            + self.sample.iter().map(|s| s.len() * 8).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn members(n: usize) -> MemberSet {
        MemberSet::new((0..n).map(|i| vec![i as f64, 0.0].into()).collect(), vec![])
    }

    #[test]
    fn sample_size_is_min_of_k_and_population() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let m = members(10);
        assert_eq!(Rsp::from_members(&m, 4, &mut rng).len(), 4);
        assert_eq!(Rsp::from_members(&m, 100, &mut rng).len(), 10);
    }

    #[test]
    fn samples_come_from_members() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = members(20);
        let rsp = Rsp::from_members(&m, 5, &mut rng);
        for s in &rsp.sample {
            assert!(m.iter_all().any(|p| p == s.as_ref()));
        }
        assert_eq!(rsp.population, 20);
    }

    #[test]
    fn budget_controls_sample_count() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let m = members(100);
        // dim 2 → 16 bytes per sample; 160-byte budget → 10 samples.
        let rsp = Rsp::from_members_with_budget(&m, 160, &mut rng);
        assert_eq!(rsp.len(), 10);
        assert!(rsp.archived_bytes() <= 160 + 4);
    }

    #[test]
    fn seeded_sampling_is_deterministic() {
        let m = members(50);
        let a = Rsp::from_members(&m, 7, &mut rand::rngs::StdRng::seed_from_u64(9));
        let b = Rsp::from_members(&m, 7, &mut rand::rngs::StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn budget_always_keeps_at_least_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let rsp = Rsp::from_members_with_budget(&members(5), 1, &mut rng);
        assert_eq!(rsp.len(), 1);
    }
}
