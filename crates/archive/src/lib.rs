//! # sgs-archive
//!
//! The **Pattern Archiver** (§6) and **Pattern Base** (§7.1):
//!
//! * [`PatternArchiver`] — decides *which* clusters to keep (sampling- or
//!   feature-based selection, §6.2) and *at which resolution* (§6.1,
//!   budget/accuracy-aware level selection on the multi-resolution SGS
//!   hierarchy),
//! * [`PatternBase`] — stores the archived summaries behind two feature
//!   indexes: an R-tree over cluster MBRs (locational) and a 4-d feature
//!   grid over (volume, core-cell count, average density, average
//!   connectivity), and executes **cluster matching queries** with the
//!   filter-and-refine strategy of §7.2,
//! * [`SharedPatternBase`] — a `parking_lot`-locked handle for the
//!   extractor → archiver → analyst pipeline (the system diagram of
//!   Fig. 4, where matching queries run against a base that is being
//!   appended to concurrently).

pub mod archiver;
pub mod durable;
pub mod io;
pub(crate) mod metrics;
pub mod pager;
pub mod pattern_base;
pub mod persist;
pub mod wal;

use std::path::Path;
use std::sync::Arc;

pub use archiver::{choose_level, ArchivePolicy, PatternArchiver};
pub use durable::{DurableConfig, DurablePatternBase};
pub use io::{ArchiveIo, DiskIo};
pub use pager::{BufferPool, PoolStats};
pub use pattern_base::{ArchivedPattern, MatchOutcome, MatchResult, PatternBase, PatternId};
pub use persist::{load, save, PersistError};

#[cfg(any(test, feature = "test-util"))]
pub use io::{FaultFs, FaultMode, FaultPlan};

/// Thread-safe handle to a pattern base (writer: archiver; readers:
/// matching queries). Since the durable tier landed (`DESIGN.md` §10)
/// this wraps [`DurablePatternBase`]; read paths reach [`PatternBase`]
/// through its `Deref`, and a memory-only handle behaves exactly as the
/// plain base used to.
pub type SharedPatternBase = Arc<parking_lot::RwLock<DurablePatternBase>>;

/// Create an empty, memory-only shared pattern base.
pub fn shared_pattern_base() -> SharedPatternBase {
    Arc::new(parking_lot::RwLock::new(DurablePatternBase::memory()))
}

/// Open (or recover) a durable shared pattern base in `dir`.
pub fn shared_durable_base(
    dir: impl AsRef<Path>,
    cfg: DurableConfig,
) -> Result<SharedPatternBase, PersistError> {
    Ok(Arc::new(parking_lot::RwLock::new(
        DurablePatternBase::open(dir, cfg)?,
    )))
}
