//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access, so the
//! handful of `rand 0.8` APIs the codebase uses are reimplemented here as a
//! drop-in path dependency (see `[patch]`-free wiring in the workspace
//! `Cargo.toml` and the "Vendored dependency shims" section of `DESIGN.md`).
//!
//! The generator behind [`rngs::StdRng`] is SplitMix64 — deterministic,
//! seedable, and statistically solid for test-data generation and
//! benchmarking, which is all this workspace asks of it. It is **not**
//! cryptographically secure and makes no stream-compatibility promise with
//! the real `rand::rngs::StdRng` (ChaCha12); seeds reproduce within this
//! workspace only.
//!
//! Supported surface: [`Rng::gen_range`] over half-open numeric ranges
//! (plus inclusive integer ranges),
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`].

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Core trait of the shim: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Return the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators. Only the `seed_from_u64` entry point is provided —
/// the workspace never seeds from byte arrays.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open range, e.g. `rng.gen_range(0.0..1.0)`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Map a raw `u64` to a double in `[0, 1)` using the top 53 bits.
pub(crate) fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.5f64..3.5);
            assert!((-2.5..3.5).contains(&f));
            let i = rng.gen_range(-20i32..-3);
            assert!((-20..-3).contains(&i));
            let u = rng.gen_range(5usize..6);
            assert_eq!(u, 5);
            let v = rng.gen_range(1i64..=3);
            assert!((1..=3).contains(&v));
        }
    }

    #[test]
    fn f32_range_stays_half_open() {
        // A tiny f32 span maximizes the chance of rounding up to the
        // exclusive bound; 100k draws catch a regression of the rejection
        // step with overwhelming probability.
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..100_000 {
            let f = rng.gen_range(1.0f32..1.0000001);
            assert!(f < 1.0000001f32);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
