//! The customizable cluster distance metric of §7.2:
//!
//! ```text
//! Dist(Ca, Cb) = ps · Dist_location + Σ wi · Dist_nlf_i(Ca, Cb)
//! ```
//!
//! `Dist_location` is binary — 1 when the clusters do not overlap in data
//! space, 0 otherwise; `ps` switches position sensitivity. The four
//! non-locational features are those of §7.1: volume (cell count), status
//! count (core cells), average density, and average connectivity, each
//! compared by bounded relative difference so every term lies in `[0, 1]`.

use sgs_core::{Error, Result};
use sgs_summarize::Sgs;

/// Configuration of a cluster matching query.
#[derive(Clone, Debug, PartialEq)]
pub struct MatchConfig {
    /// Whether matched clusters must overlap in data space (`ps` = 1).
    pub position_sensitive: bool,
    /// Analyst weights on the four non-locational features
    /// `[volume, core_count, avg_density, avg_connectivity]`; must sum
    /// to 1.
    pub weights: [f64; 4],
    /// Maximum distance for a cluster to count as a match.
    pub threshold: f64,
    /// Evaluation budget for the anytime alignment search (number of
    /// candidate alignments examined) in the non-position-sensitive refine
    /// phase.
    pub alignment_budget: usize,
}

impl MatchConfig {
    /// Equal-weight configuration (the setting used in §8.2).
    pub fn equal_weights(position_sensitive: bool, threshold: f64) -> Self {
        MatchConfig {
            position_sensitive,
            weights: [0.25; 4],
            threshold,
            alignment_budget: 64,
        }
    }

    /// Validate weights and threshold.
    pub fn validate(&self) -> Result<()> {
        if self.weights.iter().any(|w| *w < 0.0 || !w.is_finite()) {
            return Err(Error::InvalidMatchQuery(
                "feature weights must be non-negative and finite".into(),
            ));
        }
        let sum: f64 = self.weights.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(Error::InvalidMatchQuery(format!(
                "feature weights must sum to 1 (got {sum})"
            )));
        }
        if !(0.0..=1.0).contains(&self.threshold) {
            return Err(Error::InvalidMatchQuery(format!(
                "threshold must lie in [0, 1] (got {})",
                self.threshold
            )));
        }
        Ok(())
    }
}

/// Bounded relative difference `|a − b| / max(|a|, |b|)`, 0 when both are
/// 0 — shared with the extractor hot paths via [`sgs_core::kernel`], so
/// every cost loop in the system compares features through one
/// implementation.
pub use sgs_core::kernel::rel_diff;

/// Weighted distance between two feature vectors; each component is a
/// bounded relative difference, so the result lies in `[0, 1]` when the
/// weights sum to 1.
pub fn feature_distance(a: &[f64; 4], b: &[f64; 4], weights: &[f64; 4]) -> f64 {
    sgs_core::kernel::weighted_rel_diff_sum(a, b, weights)
}

/// Binary locational distance: 0 if the MBRs overlap, 1 otherwise (§7.2).
pub fn location_distance(a: &Sgs, b: &Sgs) -> f64 {
    match (a.mbr(), b.mbr()) {
        (Some(ra), Some(rb)) if ra.intersects(&rb) => 0.0,
        _ => 1.0,
    }
}

/// The cluster-level (filter-phase) distance of §7.2. For
/// position-sensitive queries a non-overlap immediately yields the maximum
/// distance 1 and no feature comparison is performed.
pub fn cluster_distance(a: &Sgs, b: &Sgs, config: &MatchConfig) -> f64 {
    if config.position_sensitive && location_distance(a, b) > 0.0 {
        return 1.0;
    }
    feature_distance(&a.features(), &b.features(), &config.weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_core::GridGeometry;
    use sgs_summarize::MemberSet;

    fn blob(x0: f64, n: usize) -> Sgs {
        let cores: Vec<Box<[f64]>> = (0..n)
            .map(|i| vec![x0 + i as f64 * 0.3, 0.1].into())
            .collect();
        Sgs::from_members(&MemberSet::new(cores, vec![]), &GridGeometry::basic(2, 1.0))
    }

    #[test]
    fn config_validation() {
        let mut c = MatchConfig::equal_weights(false, 0.2);
        c.validate().unwrap();
        c.weights = [0.5, 0.5, 0.5, 0.5];
        assert!(c.validate().is_err());
        c.weights = [1.0, 0.0, 0.0, 0.0];
        c.threshold = 1.5;
        assert!(c.validate().is_err());
        c.threshold = 0.3;
        c.validate().unwrap();
        c.weights = [-0.5, 0.5, 0.5, 0.5];
        assert!(c.validate().is_err());
    }

    #[test]
    fn rel_diff_bounds() {
        assert_eq!(rel_diff(0.0, 0.0), 0.0);
        assert_eq!(rel_diff(1.0, 1.0), 0.0);
        assert_eq!(rel_diff(0.0, 5.0), 1.0);
        assert!((rel_diff(10.0, 20.0) - 0.5).abs() < 1e-12);
        assert_eq!(rel_diff(10.0, 20.0), rel_diff(20.0, 10.0));
    }

    #[test]
    fn identical_clusters_have_zero_distance() {
        let a = blob(0.0, 10);
        let cfg = MatchConfig::equal_weights(true, 0.5);
        assert_eq!(cluster_distance(&a, &a, &cfg), 0.0);
    }

    #[test]
    fn position_sensitive_rejects_disjoint() {
        // Shift by an exact multiple of the cell side (plus the same inner
        // offset) so the far blob has the identical cell structure.
        let side = GridGeometry::basic(2, 1.0).side();
        let a = blob(0.05, 10);
        let b = blob(0.05 + 140.0 * side, 10); // same shape, far away
        let ps = MatchConfig::equal_weights(true, 0.5);
        let nps = MatchConfig::equal_weights(false, 0.5);
        assert_eq!(cluster_distance(&a, &b, &ps), 1.0);
        // Non-position-sensitive: identical features → distance 0.
        assert_eq!(cluster_distance(&a, &b, &nps), 0.0);
    }

    #[test]
    fn feature_distance_respects_weights() {
        let a = [10.0, 5.0, 2.0, 1.0];
        let b = [20.0, 5.0, 2.0, 1.0]; // only volume differs (rel 0.5)
        assert!((feature_distance(&a, &b, &[1.0, 0.0, 0.0, 0.0]) - 0.5).abs() < 1e-12);
        assert_eq!(feature_distance(&a, &b, &[0.0, 1.0, 0.0, 0.0]), 0.0);
        assert!((feature_distance(&a, &b, &[0.25; 4]) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn bigger_clusters_are_farther() {
        let a = blob(0.0, 6);
        let slightly = blob(0.0, 8);
        let very = blob(0.0, 30);
        let cfg = MatchConfig::equal_weights(false, 1.0);
        assert!(cluster_distance(&a, &slightly, &cfg) < cluster_distance(&a, &very, &cfg));
    }
}
