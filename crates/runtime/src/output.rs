//! Output-side flow control for `poll`-mode queries.
//!
//! A `poll`-mode query's completed windows land in an `OutputBuffer`
//! shared between its executor task (producer) and [`Runtime::poll`]
//! (consumer). The buffer's [`OutputPolicy`] decides what happens when
//! the caller does not drain fast enough — previously the buffer grew
//! without bound (still available as [`OutputPolicy::Unbounded`], the
//! default), which is exactly the ROADMAP's "output-side flow control"
//! gap this module closes.
//!
//! [`Runtime::poll`]: crate::runtime::Runtime::poll

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use sgs_core::WindowId;
use sgs_csgs::WindowOutput;

/// Readiness callback attached to a query's output buffer: invoked (outside
/// the buffer lock) after every push and on close, so an external
/// consumer — the server's reactor, which turns buffered windows into
/// pushed `Windows` frames — learns "this buffer has news" without
/// polling. The callback must not block and must not call back into the
/// runtime.
pub type OutputNotify = Arc<dyn Fn() + Send + Sync>;

/// What a `poll`-mode query does when its output buffer is full.
///
/// Capacities are in completed windows and are clamped to ≥ 1.
/// Callback-mode queries never buffer, so the policy does not apply to
/// them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OutputPolicy {
    /// Buffer every completed window until polled (the historical
    /// behavior): simple, lossless, but unbounded memory if the caller
    /// never drains.
    #[default]
    Unbounded,
    /// Lossless and bounded: the query's executor task **blocks** until
    /// [`Runtime::poll`] drains the buffer below capacity. Backpressure
    /// thus propagates all the way to ingestion (the blocked task stops
    /// consuming its input channel, which eventually blocks
    /// [`Runtime::push`]). While blocked, the task occupies one pool
    /// worker — on a small pool, enough blocked queries can starve
    /// every other query (and their teardown) of workers — so a drain
    /// must be able to proceed concurrently:
    /// [`Runtime::poll`] takes `&self`, so share the runtime reference
    /// with a drainer thread (e.g. under `std::thread::scope`), or keep
    /// each push small enough for the input queues to absorb
    /// ([`RuntimeConfig::channel_capacity`] messages per query) and poll
    /// between pushes. Do not call [`Runtime::quiesce`] before draining —
    /// the barrier waits on the blocked query. [`Runtime::cancel`]
    /// closes the cancelled query's own buffer, which stops its blocking
    /// (losslessly) for teardown — but it can still wait behind *other*
    /// `Block`-stalled queries if their tasks occupy every pool worker,
    /// so on small pools drain (or cancel) the stalled queries first.
    ///
    /// [`Runtime::poll`]: crate::runtime::Runtime::poll
    /// [`Runtime::push`]: crate::runtime::Runtime::push
    /// [`Runtime::quiesce`]: crate::runtime::Runtime::quiesce
    /// [`Runtime::cancel`]: crate::runtime::Runtime::cancel
    /// [`RuntimeConfig::channel_capacity`]: crate::runtime::RuntimeConfig::channel_capacity
    Block(usize),
    /// Bounded and non-blocking: the **oldest** buffered window is
    /// discarded to admit the newest, so a slow consumer always sees the
    /// most recent results. Discards are counted in
    /// [`QueryStats::windows_dropped`].
    ///
    /// [`QueryStats::windows_dropped`]: crate::registry::QueryStats::windows_dropped
    DropOldest(usize),
}

/// The buffered completed windows of one `poll`-mode query.
pub(crate) struct OutputBuffer {
    policy: OutputPolicy,
    queue: Mutex<Buffered>,
    not_full: Condvar,
    /// Readiness hook ([`OutputNotify`]), swapped in by
    /// `Runtime::set_output_notify` when a subscriber attaches.
    notify: Mutex<Option<OutputNotify>>,
}

/// Lock-guarded buffer state.
struct Buffered {
    windows: VecDeque<(WindowId, WindowOutput)>,
    /// Wire-encoded size of every buffered window (the
    /// [`window_cost`] sum) — what per-owner output quotas meter.
    bytes: usize,
    /// Set when the query is being cancelled: [`OutputPolicy::Block`]
    /// stops blocking (overflow is admitted losslessly) so teardown can
    /// never hang behind an undrained buffer.
    closed: bool,
}

/// Encoded size of one buffered window — the same formula as
/// `sgs_wire::WireWindow::encoded_len` (window id + cluster count, then
/// per cluster its cores/edges/SGS cells), so a per-owner output quota
/// meters exactly the bytes a `Windows` response would carry. Kept here
/// (not imported) because the runtime does not depend on the wire crate;
/// a server-side test pins the two formulas together.
pub(crate) fn window_cost(clusters: &WindowOutput) -> usize {
    let mut bytes = 8 + 4;
    for c in clusters {
        bytes += 4 + 4 * c.cores.len() + 4 + 4 * c.edges.len();
        bytes += 2 + 1 + 8 + 4;
        for cell in &c.sgs.cells {
            bytes += 4 * cell.coord.0.len() + 4 + 1 + 4 + 4 * cell.connections.len();
        }
    }
    bytes
}

impl OutputBuffer {
    pub(crate) fn new(policy: OutputPolicy) -> Self {
        OutputBuffer {
            policy,
            queue: Mutex::new(Buffered {
                windows: VecDeque::new(),
                bytes: 0,
                closed: false,
            }),
            not_full: Condvar::new(),
            notify: Mutex::new(None),
        }
    }

    /// Install (or clear) the readiness callback. The new callback is
    /// invoked once immediately if windows are already buffered, so a
    /// subscriber attaching late never misses the wake for what is
    /// already there.
    pub(crate) fn set_notify(&self, notify: Option<OutputNotify>) {
        let fire_now = notify.is_some() && !self.queue.lock().unwrap().windows.is_empty();
        let installed = {
            let mut slot = self.notify.lock().unwrap();
            *slot = notify;
            slot.clone()
        };
        if fire_now {
            if let Some(cb) = installed {
                cb();
            }
        }
    }

    /// Run the readiness callback, if one is installed. Never called
    /// under the queue lock.
    fn fire_notify(&self) {
        let cb = self.notify.lock().unwrap().clone();
        if let Some(cb) = cb {
            cb();
        }
    }

    /// Append one completed window per the policy. Returns the number of
    /// windows dropped to admit it (0 or 1). Blocks under
    /// [`OutputPolicy::Block`] while the buffer is at capacity, until
    /// drained or [`close`](Self::close)d.
    pub(crate) fn push(&self, window: WindowId, out: WindowOutput) -> u64 {
        let cost = window_cost(&out);
        let mut q = self.queue.lock().unwrap();
        let mut dropped = 0;
        match self.policy {
            OutputPolicy::Unbounded => {}
            OutputPolicy::Block(cap) => {
                let cap = cap.max(1);
                while q.windows.len() >= cap && !q.closed {
                    q = self.not_full.wait(q).unwrap();
                }
            }
            OutputPolicy::DropOldest(cap) => {
                let cap = cap.max(1);
                while q.windows.len() >= cap {
                    if let Some((_, old)) = q.windows.pop_front() {
                        q.bytes -= window_cost(&old);
                    }
                    dropped += 1;
                }
            }
        }
        q.windows.push_back((window, out));
        q.bytes += cost;
        drop(q);
        self.fire_notify();
        dropped
    }

    /// Stop [`OutputPolicy::Block`] from ever blocking again (the query
    /// is being torn down; the buffer stays pollable). Idempotent.
    pub(crate) fn close(&self) {
        self.queue.lock().unwrap().closed = true;
        self.not_full.notify_all();
        // A subscriber learns about the close too: what is buffered is
        // final, and its final drain should happen now.
        self.fire_notify();
    }

    /// Take everything buffered so far (completion order preserved) and
    /// wake any producer blocked on capacity.
    pub(crate) fn drain(&self) -> Vec<(WindowId, WindowOutput)> {
        let mut q = self.queue.lock().unwrap();
        let out: Vec<_> = q.windows.drain(..).collect();
        q.bytes = 0;
        if !out.is_empty() {
            self.not_full.notify_all();
        }
        out
    }

    /// Take the oldest buffered window, waking any producer blocked on
    /// capacity — the incremental unit [`PollBatch`] is built on.
    pub(crate) fn pop(&self) -> Option<(WindowId, WindowOutput)> {
        let mut q = self.queue.lock().unwrap();
        let out = q.windows.pop_front();
        if let Some((_, clusters)) = &out {
            q.bytes -= window_cost(clusters);
            self.not_full.notify_all();
        }
        out
    }

    /// Return a just-popped window to the **front** of the buffer
    /// (undoing one [`pop`](Self::pop); completion order is preserved
    /// for the next drain). May transiently hold the buffer one past a
    /// `Block` capacity if a producer slipped in since the pop —
    /// harmless, since producers only wait before their own push.
    pub(crate) fn push_front(&self, window: WindowId, out: WindowOutput) {
        let cost = window_cost(&out);
        let mut q = self.queue.lock().unwrap();
        q.windows.push_front((window, out));
        q.bytes += cost;
    }

    /// Wire-encoded size of everything buffered right now — what
    /// per-owner output quotas meter ([`window_cost`] sum).
    pub(crate) fn buffered_bytes(&self) -> usize {
        self.queue.lock().unwrap().bytes
    }
}

/// Draining iterator over a query's buffered completed windows, returned
/// by [`Runtime::poll_batch`]: yields up to a bounded number of windows,
/// oldest first, popping each from the buffer as it is yielded.
///
/// Unlike [`Runtime::poll`] (which drains everything into one `Vec`),
/// this frees buffer capacity window by window — an
/// [`OutputPolicy::Block`]-stalled producer wakes after the *first*
/// `next()`, and a consumer that stops early (a network writer hitting
/// its own backpressure, say) leaves the rest buffered for the next
/// call. Dropping the iterator keeps undrained windows intact.
///
/// [`Runtime::poll`]: crate::runtime::Runtime::poll
/// [`Runtime::poll_batch`]: crate::runtime::Runtime::poll_batch
pub struct PollBatch {
    pub(crate) buffer: Option<std::sync::Arc<OutputBuffer>>,
    pub(crate) remaining: usize,
}

impl PollBatch {
    /// Return an unconsumed window to the front of the buffer, undoing
    /// one `next()` — for consumers that discover *after* popping that a
    /// window does not fit their budget (e.g. a network page). Order is
    /// preserved; the window is yielded again by the next drain (or by
    /// this iterator, which steps its bound back too).
    pub fn put_back(&mut self, window: WindowId, out: WindowOutput) {
        if let Some(buffer) = &self.buffer {
            buffer.push_front(window, out);
            self.remaining = self.remaining.saturating_add(1);
        }
    }
}

impl Iterator for PollBatch {
    type Item = (WindowId, WindowOutput);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        let item = self.buffer.as_ref()?.pop()?;
        self.remaining -= 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(n: u64) -> (WindowId, WindowOutput) {
        (WindowId(n), Vec::new())
    }

    #[test]
    fn unbounded_keeps_everything_in_order() {
        let buf = OutputBuffer::new(OutputPolicy::Unbounded);
        for n in 0..100 {
            assert_eq!(buf.push(window(n).0, window(n).1), 0);
        }
        let got = buf.drain();
        assert_eq!(got.len(), 100);
        assert!(got.iter().enumerate().all(|(i, (w, _))| w.0 == i as u64));
        assert!(buf.drain().is_empty());
    }

    #[test]
    fn drop_oldest_keeps_newest_and_counts() {
        let buf = OutputBuffer::new(OutputPolicy::DropOldest(4));
        let mut dropped = 0;
        for n in 0..10 {
            dropped += buf.push(window(n).0, window(n).1);
        }
        assert_eq!(dropped, 6);
        let got = buf.drain();
        let ids: Vec<u64> = got.iter().map(|(w, _)| w.0).collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let buf = OutputBuffer::new(OutputPolicy::DropOldest(0));
        buf.push(window(0).0, window(0).1);
        assert_eq!(buf.push(window(1).0, window(1).1), 1);
        assert_eq!(buf.drain().len(), 1);
    }

    #[test]
    fn pop_yields_oldest_first_and_unblocks_a_producer() {
        use std::sync::Arc;
        let buf = Arc::new(OutputBuffer::new(OutputPolicy::Block(2)));
        buf.push(window(0).0, window(0).1);
        buf.push(window(1).0, window(1).1);
        let producer = {
            let buf = buf.clone();
            std::thread::spawn(move || {
                buf.push(window(2).0, window(2).1); // blocks until one pop
            })
        };
        assert_eq!(buf.pop().unwrap().0, WindowId(0));
        producer.join().unwrap();
        assert_eq!(buf.pop().unwrap().0, WindowId(1));
        assert_eq!(buf.pop().unwrap().0, WindowId(2));
        assert!(buf.pop().is_none());
    }

    #[test]
    fn poll_batch_is_bounded_and_leaves_the_rest() {
        use std::sync::Arc;
        let buf = Arc::new(OutputBuffer::new(OutputPolicy::Unbounded));
        for n in 0..5 {
            buf.push(window(n).0, window(n).1);
        }
        let batch = PollBatch {
            buffer: Some(buf.clone()),
            remaining: 2,
        };
        let ids: Vec<u64> = batch.map(|(w, _)| w.0).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(buf.drain().len(), 3, "undrained windows stay buffered");
    }

    #[test]
    fn byte_accounting_tracks_every_mutation() {
        let buf = OutputBuffer::new(OutputPolicy::Unbounded);
        assert_eq!(buf.buffered_bytes(), 0);
        let per_window = window_cost(&Vec::new());
        assert_eq!(per_window, 12, "empty window: id + cluster count");
        for n in 0..3 {
            buf.push(window(n).0, window(n).1);
        }
        assert_eq!(buf.buffered_bytes(), 3 * per_window);
        let (w, out) = buf.pop().unwrap();
        assert_eq!(buf.buffered_bytes(), 2 * per_window);
        buf.push_front(w, out);
        assert_eq!(buf.buffered_bytes(), 3 * per_window);
        buf.drain();
        assert_eq!(buf.buffered_bytes(), 0);

        // DropOldest releases the evicted window's bytes.
        let buf = OutputBuffer::new(OutputPolicy::DropOldest(2));
        for n in 0..5 {
            buf.push(window(n).0, window(n).1);
        }
        assert_eq!(buf.buffered_bytes(), 2 * per_window);
    }

    #[test]
    fn notify_fires_on_push_close_and_late_attach() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let buf = OutputBuffer::new(OutputPolicy::Unbounded);
        let fired = Arc::new(AtomicU64::new(0));
        let counter = fired.clone();
        buf.set_notify(Some(Arc::new(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        })));
        assert_eq!(fired.load(Ordering::SeqCst), 0, "empty buffer: no wake");
        buf.push(window(0).0, window(0).1);
        buf.push(window(1).0, window(1).1);
        assert_eq!(fired.load(Ordering::SeqCst), 2, "one wake per push");
        buf.close();
        assert_eq!(fired.load(Ordering::SeqCst), 3, "close wakes too");

        // A subscriber attaching after windows buffered gets one
        // immediate wake for the backlog.
        let late = Arc::new(AtomicU64::new(0));
        let counter = late.clone();
        buf.set_notify(Some(Arc::new(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        })));
        assert_eq!(late.load(Ordering::SeqCst), 1, "late attach sees backlog");
        buf.set_notify(None);
        buf.push(window(2).0, window(2).1);
        assert_eq!(late.load(Ordering::SeqCst), 1, "cleared hook stays quiet");
    }

    #[test]
    fn block_unblocks_on_drain() {
        use std::sync::Arc;
        let buf = Arc::new(OutputBuffer::new(OutputPolicy::Block(2)));
        buf.push(window(0).0, window(0).1);
        buf.push(window(1).0, window(1).1);
        let producer = {
            let buf = buf.clone();
            std::thread::spawn(move || {
                buf.push(window(2).0, window(2).1); // blocks until drained
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(buf.drain().len(), 2);
        producer.join().unwrap();
        assert_eq!(buf.drain().len(), 1);
    }
}
