//! Sharded extraction scaling (`DESIGN.md` §6): sustained single-query
//! C-SGS throughput (tuples/sec) as the extraction shard count grows
//! through S ∈ {1, 2, 4, 8}, on the Fig. 7 workload (win = 10K tuples,
//! slide = 1K, pattern case 2 of §8.1).
//!
//! Where `runtime_throughput` scales *across* concurrent queries, this
//! harness scales *within* one hot query: the same stream, the same
//! window geometry, only `ClusterQuery::shards` varies. The per-window
//! outputs are byte-identical across S (the sharded-extraction
//! determinism contract), which the harness spot-checks via window and
//! cluster counts.
//!
//! ```text
//! cargo run --release -p sgs-bench --bin shard_scaling -- [--scale 0.1] [--dataset gmti|stt] [--json]
//! ```
//!
//! `--json` prints one machine-readable report object to stdout instead
//! of the table (CI uploads it as `BENCH_shard_scaling.json`). Expect
//! near-linear speedup up to the machine's core count; on a single-core
//! runner every S reports roughly the S = 1 rate.

use std::time::Instant;

use sgs_bench::json::JsonObject;
use sgs_bench::obs_report::{metrics_json, parse_metrics};
use sgs_bench::table::print_table;
use sgs_bench::workload::{parse_dataset, parse_scale, Dataset};
use sgs_core::{ClusterQuery, ShardCount, WindowSpec};
use sgs_csgs::CSgs;
use sgs_stream::WindowEngine;

struct Row {
    shards: u32,
    tuples_per_sec: f64,
    speedup: f64,
    windows: u64,
    clusters: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = parse_scale(&args);
    let dataset = parse_dataset(&args);
    let json = args.iter().any(|a| a == "--json");
    let metrics = parse_metrics(&args);

    // Fig. 7 geometry: win = 10K tuples, slide = 1K, scaled down for
    // quick runs; pattern case 2 (§8.1) of the chosen dataset.
    let slide = ((1_000.0 * scale) as u64).max(40);
    let win = slide * 10;
    let (theta_r, theta_c) = dataset.cases()[1];
    let n_windows = 12u64;
    let n = (slide * n_windows + 2 * win) as usize;
    let points = dataset.points(n);
    let spec = WindowSpec::count(win, slide).expect("valid window");

    let mut rows: Vec<Row> = Vec::new();
    for s in [1u32, 2, 4, 8] {
        let query = ClusterQuery::new(theta_r, theta_c, dataset.dim(), spec)
            .expect("valid query")
            .with_shards(ShardCount::Fixed(s));
        let mut csgs = CSgs::new(query);
        let mut engine = WindowEngine::new(spec, dataset.dim());
        let mut outs = Vec::new();
        let start = Instant::now();
        engine
            .push_batch(points.iter().cloned(), &mut csgs, &mut outs)
            .expect("ingest succeeds");
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(csgs.rqs_count, n as u64, "one RQS per object");

        let windows = outs.len() as u64;
        let clusters: u64 = outs.iter().map(|(_, o)| o.len() as u64).sum();
        if let Some(base) = rows.first() {
            // Shard-invariance spot check against the S = 1 run.
            assert_eq!(windows, base.windows, "window count diverged at S = {s}");
            assert_eq!(clusters, base.clusters, "cluster count diverged at S = {s}");
        }
        let rate = n as f64 / secs;
        let speedup = rows.first().map_or(1.0, |base| rate / base.tuples_per_sec);
        rows.push(Row {
            shards: s,
            tuples_per_sec: rate,
            speedup,
            windows,
            clusters,
        });
    }

    let stream_name = match dataset {
        Dataset::Gmti => "gmti",
        Dataset::Stt => "stt",
    };
    if json {
        let json_rows: Vec<JsonObject> = rows
            .iter()
            .map(|r| {
                JsonObject::new()
                    .u64("shards", r.shards as u64)
                    .f64("tuples_per_sec", r.tuples_per_sec)
                    .f64("speedup", r.speedup)
                    .u64("windows", r.windows)
                    .u64("clusters", r.clusters)
            })
            .collect();
        let report = JsonObject::new()
            .str("bench", "shard_scaling")
            .str("dataset", stream_name)
            .u64("tuples", n as u64)
            .u64("win", win)
            .u64("slide", slide)
            .f64("theta_r", theta_r)
            .u64("theta_c", theta_c as u64)
            .u64(
                "available_parallelism",
                std::thread::available_parallelism().map_or(0, |p| p.get() as u64),
            )
            .u64("pool_threads", sgs_exec::global().threads() as u64)
            .u64("metrics_enabled", metrics as u64)
            .array("rows", &json_rows)
            .array("metrics", &metrics_json())
            .render();
        println!("{report}");
    } else {
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.shards.to_string(),
                    format!("{:.0}", r.tuples_per_sec),
                    format!("{:.2}x", r.speedup),
                    r.windows.to_string(),
                    r.clusters.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!(
                "sharded extraction scaling — {n} tuples of {stream_name}, \
                 win {win} / slide {slide}, θr={theta_r}, θc={theta_c}"
            ),
            &["shards", "tuples/s", "speedup", "windows", "clusters"],
            &table,
        );
    }
}
